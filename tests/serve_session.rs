//! Serve-layer regressions, end to end through the facade crate: a
//! serve session must answer a replayed request stream with
//! byte-identical responses for any worker count, a warm replay on the
//! same daemon must hit the process-lifetime memo cache while
//! reproducing the cold responses exactly, broken requests mid-stream
//! must degrade to typed error responses without disturbing their
//! neighbors, graceful drain (including a SIGTERM-style flag flip under
//! concurrent connections) must answer every admitted job before the
//! session ends, and `--resume` must replay a killed session's journal
//! byte-identically.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use eco::serve::{request_fingerprint, RequestJournal, ServeOptions, Server};
use eco::workgen::{contest_suite, request_stream, write_unit, ManifestEntry, SuiteUnit};

/// Small, fast suite units (skips the difficult datapath ones).
fn fast_units(n: usize) -> Vec<SuiteUnit> {
    contest_suite()
        .into_iter()
        .filter(|u| !u.spec.difficult)
        .take(n)
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco_serve_it_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Emits `n` fast units into `dir` and returns the JSONL request
/// stream referencing them by absolute path.
fn emit_stream(dir: &Path, n: usize) -> String {
    let entries: Vec<ManifestEntry> = fast_units(n)
        .iter()
        .map(|u| write_unit(dir, u).expect("emit unit"))
        .collect();
    request_stream(dir, &entries)
}

/// A `Write` sink the test can read back after the session ends.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn take(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("utf-8 responses")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(data);
        Ok(data.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn serve_once(server: &Server, input: &str) -> String {
    let sink = SharedBuf::default();
    server.serve_reader(Cursor::new(input.to_string()), Box::new(sink.clone()));
    sink.take()
}

/// The tentpole determinism contract: responses are sequenced in
/// request order and carry only scheduling-independent fields, so the
/// same stream yields the same bytes whatever the worker count.
#[test]
fn responses_are_byte_identical_across_worker_counts() {
    let dir = temp_dir("workers");
    let stream = emit_stream(&dir, 5);
    let outputs: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&workers| {
            let server = Server::new(ServeOptions {
                workers,
                ..ServeOptions::default()
            });
            serve_once(&server, &stream)
        })
        .collect();
    assert_eq!(outputs[0], outputs[1], "1 vs 2 workers");
    assert_eq!(outputs[0], outputs[2], "1 vs 4 workers");
    assert_eq!(outputs[0].lines().count(), 5, "one response per request");
    for line in outputs[0].lines() {
        assert!(line.contains("\"status\": \"complete\""), "{line}");
        assert!(line.contains("\"verified\": true"), "{line}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The always-warm property: a second replay of the same stream on the
/// same daemon hits the process-lifetime memo cache and reproduces the
/// cold responses byte for byte (cached patches are re-verified, so
/// `verified` stays true on hits).
#[test]
fn warm_replay_hits_the_memo_and_reproduces_cold_responses() {
    let dir = temp_dir("warm");
    let stream = emit_stream(&dir, 4);
    let server = Server::new(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });
    let cold_out = serve_once(&server, &stream);
    let cold_hits = {
        // Ask the daemon itself, like an operator would.
        let stats = serve_once(&server, "{\"op\": \"stats\", \"id\": 0}\n");
        assert!(stats.contains("\"op\": \"stats\""), "{stats}");
        stats
    };
    let warm_out = serve_once(&server, &stream);
    let warm_summary = server.serve_reader(
        Cursor::new("{\"op\": \"stats\", \"id\": 1}\n".to_string()),
        Box::new(Vec::new()),
    );
    assert_eq!(cold_out, warm_out, "warm hits must not change responses");
    assert!(
        warm_summary.memo.hits > 0,
        "warm replay must hit the shared cache (cold stats: {cold_hits})"
    );
    assert!(
        warm_summary.memo.hits > warm_summary.memo.fallbacks,
        "hits should dominate re-verification fallbacks"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Broken requests mid-stream — unparseable JSON, a truncated escape,
/// a missing circuit file — each get one typed response in order while
/// every healthy neighbor still completes, for any worker count.
#[test]
fn broken_requests_mid_stream_do_not_disturb_neighbors() {
    let dir = temp_dir("broken");
    let good = emit_stream(&dir, 2);
    let good_lines: Vec<&str> = good.lines().collect();
    let input = format!(
        "{}\n\
         this is not json\n\
         {{\"op\": \"run\", \"job\": {{\"faulty\": \"trunc\\\n\
         {{\"op\": \"run\", \"id\": \"gone\", \"job\": {{\"name\": \"gone\", \
          \"faulty\": \"/nonexistent/f.v\", \"golden\": \"/nonexistent/g.v\"}}}}\n\
         {}\n",
        good_lines[0], good_lines[1]
    );
    let mut outputs = Vec::new();
    for workers in [1usize, 4] {
        let server = Server::new(ServeOptions {
            workers,
            ..ServeOptions::default()
        });
        let out = serve_once(&server, &input);
        let lines: Vec<String> = out.lines().map(str::to_string).collect();
        assert_eq!(lines.len(), 5, "workers={workers}: {out}");
        assert!(lines[0].contains("\"status\": \"complete\""), "{out}");
        assert!(lines[1].contains("\"error\": \"bad-request\""), "{out}");
        assert!(lines[2].contains("\"error\": \"bad-request\""), "{out}");
        assert!(lines[3].contains("\"status\": \"error\""), "{out}");
        assert!(lines[4].contains("\"status\": \"complete\""), "{out}");
        outputs.push(out);
    }
    assert_eq!(outputs[0], outputs[1], "error paths are deterministic too");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful drain: a shutdown request mid-stream is acknowledged only
/// after every admitted job answered, nothing after it is read, and the
/// daemon-wide drain flag refuses later streams' runs with a typed
/// `draining` error.
#[test]
fn shutdown_answers_admitted_work_then_refuses_new_runs() {
    let dir = temp_dir("drain");
    let stream = emit_stream(&dir, 3);
    let server = Server::new(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });
    let input = format!("{stream}{{\"op\": \"shutdown\", \"id\": \"bye\"}}\n");
    let out = serve_once(&server, &input);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "3 jobs + ack: {out}");
    for line in &lines[..3] {
        assert!(line.contains("\"status\": \"complete\""), "{out}");
    }
    assert!(lines[3].contains("\"op\": \"shutdown\""), "{out}");
    assert!(server.is_draining());

    // A post-drain stream: runs refused, inline ops still answered.
    let late = serve_once(
        &server,
        &format!("{}{}", stream.lines().next().unwrap(), "\n"),
    );
    assert!(late.contains("\"error\": \"draining\""), "{late}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A SIGTERM-style drain (the signal handler just flips this flag)
/// while several connections are in flight: every connection still gets
/// exactly one typed response — completed if the job was admitted
/// before the drain latched, a `draining` refusal otherwise — the
/// daemon exits cleanly, and nothing hangs or is silently dropped.
#[test]
fn sigterm_drain_answers_every_concurrent_connection() {
    let dir = temp_dir("sigterm");
    let requests: Vec<String> = emit_stream(&dir, 3).lines().map(str::to_string).collect();
    let sock = dir.join("eco.sock");
    let server = Arc::new(Server::new(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    }));
    let shutdown = Arc::new(AtomicBool::new(false));
    let daemon = {
        let server = Arc::clone(&server);
        let sock = sock.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || server.serve_unix(&sock, &shutdown).expect("serve_unix"))
    };
    while !sock.exists() {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    // Every client writes its request, then all rendezvous with the
    // main thread, which flips the termination flag *before* anyone
    // reads a response — the drain races real in-flight work.
    let barrier = Arc::new(Barrier::new(requests.len() + 1));
    let clients: Vec<_> = requests
        .iter()
        .map(|req| {
            let req = format!("{req}\n");
            let sock = sock.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut tx = UnixStream::connect(&sock).expect("connect");
                tx.write_all(req.as_bytes()).expect("send request");
                barrier.wait();
                let mut line = String::new();
                BufReader::new(tx).read_line(&mut line).expect("response");
                line
            })
        })
        .collect();
    barrier.wait();
    shutdown.store(true, Ordering::SeqCst);

    let responses: Vec<String> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    let summary = daemon.join().expect("daemon thread");
    for line in &responses {
        assert!(
            line.contains("\"status\": \"complete\"") || line.contains("\"error\": \"draining\""),
            "connection must get a completed job or a typed refusal: {line}"
        );
    }
    assert_eq!(
        summary.served + summary.refused_draining,
        requests.len() as u64,
        "every admitted or refused request is accounted for"
    );
    assert!(!sock.exists(), "socket file removed on drain");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash recovery end to end: a session's request journal is cut off
/// mid-run (two jobs completed, two admitted but unanswered, a torn
/// byte tail from the kill), and `resume` must reproduce the exact
/// bytes of the uninterrupted session — completed responses verbatim,
/// unfinished jobs recomputed.
#[test]
fn resume_after_kill_is_byte_identical_to_uninterrupted_run() {
    let dir = temp_dir("resume");
    let stream = emit_stream(&dir, 4);
    let requests: Vec<&str> = stream.lines().collect();

    // The uninterrupted reference session (no durable state).
    let reference = serve_once(
        &Server::new(ServeOptions {
            workers: 2,
            ..ServeOptions::default()
        }),
        &stream,
    );
    let reference_lines: Vec<&str> = reference.lines().collect();
    assert_eq!(reference_lines.len(), 4);

    // Forge the journal a SIGKILLed daemon would leave behind: all four
    // admitted, the first two answered, plus a torn frame tail.
    let state = dir.join("state");
    {
        let journal = RequestJournal::open(&state).expect("open journal");
        for (i, req) in requests.iter().enumerate() {
            let fp = request_fingerprint(req);
            journal.admit(fp, req);
            if i < 2 {
                journal.done(fp, reference_lines[i]);
            }
        }
        assert_eq!(journal.append_errors(), 0);
    }
    let wal = state.join("requests.wal");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal)
        .expect("open wal");
    file.write_all(&[0x7f; 9]).expect("torn tail");
    drop(file);

    // Recovery: replay the journal on a fresh server.
    let server = Server::new(ServeOptions {
        workers: 2,
        state_dir: Some(state),
        ..ServeOptions::default()
    });
    assert!(server.state_error().is_none(), "state must open cleanly");
    let mut recovered = Vec::new();
    let report = server.resume_from_journal(&mut recovered).expect("resume");
    assert_eq!(report.replayed, 2, "completed jobs replay verbatim");
    assert_eq!(report.recomputed, 2, "unfinished jobs re-execute");
    assert_eq!(
        String::from_utf8(recovered).expect("utf-8"),
        reference,
        "recovered stream must be byte-identical to the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
