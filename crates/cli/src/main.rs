//! `eco-patch`: contest-style command line for cost-aware ECO patch
//! generation.
//!
//! ```text
//! eco-patch -f faulty.v -g golden.v -w weights.txt -t t_0,t_1 -o patch.v
//! ```
//!
//! Reads the faulty circuit (targets floating as inputs), the golden
//! circuit, and a weight file; writes the patch as structural Verilog
//! whose inputs are existing faulty nets and whose outputs drive the
//! targets. Exit code 0 = patched and verified; 2 = unrectifiable;
//! 4 = governed run degraded to a partial result; 1 = usage or I/O error.
//!
//! `--jobs N` sets the worker-thread count for the per-cluster
//! patch-generation stage (0 = all cores; results are identical for any
//! value). `--portfolio N` races hard unlimited-budget SAT queries across
//! N (1..=4) diversified solver configurations, first answer wins; the
//! deterministic tie-break and configuration-0 artifact pinning keep the
//! output byte-identical for every N. `--stats` prints run telemetry
//! (per-stage wall times, SAT and
//! FRAIG counters, flow events) to stderr; `--stats=json` emits the same
//! as a single JSON object, keeping stdout clean for the patch netlist.
//!
//! `--timeout SECS` and `--conflict-budget N` enable the run-wide resource
//! governor: when a limit cuts the run short, the process exits with code
//! 4 and reports every cluster's diagnosis; `--allow-partial`
//! additionally writes the completed (unverified) patches to the output.
//!
//! `--unroll K` switches to the sequential flow: the faulty and golden
//! designs may carry latches (any sequential format the hub reads —
//! `.v`, `.blif`, `.aag`, `.aig`, `.btor2`), both are unrolled K frames,
//! the combinational engine rectifies the unrolled miter, and the
//! per-frame patch is folded back into a single sequential patch proven
//! cycle-accurate from reset by a fresh K-frame unrolled miter. Exit
//! code 4 here means the fold or its re-proof failed (the unrolled
//! patch exists but is not time-invariant).

use std::process::ExitCode;
use std::time::Duration;

use std::collections::HashMap;

use eco_core::{BudgetOptions, EcoEngine, EcoInstance, EcoOptions, EcoOutcome, InitialPatchKind};
use eco_netlist::{
    netlist_from_aig, parse_blif, parse_verilog, parse_weights, write_verilog, WeightTable,
};

/// How `--stats` renders the run telemetry on stderr.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsFormat {
    Off,
    Text,
    Json,
}

struct Args {
    faulty: String,
    golden: String,
    weights: Option<String>,
    targets: Vec<String>,
    output: Option<String>,
    localization: bool,
    optimize: bool,
    initial: InitialPatchKind,
    jobs: usize,
    portfolio: usize,
    stats: StatsFormat,
    quiet: bool,
    timeout: Option<Duration>,
    conflict_budget: Option<u64>,
    allow_partial: bool,
    unroll: Option<usize>,
}

const USAGE: &str = "usage: eco-patch -f <faulty.{v,blif}> -g <golden.{v,blif}> -t <t1,t2,...> \
[-w <weights.txt>] [-o <patch.v>] [--no-localization] [--no-optimize] \
[--initial onset|negoff|interpolant] [--jobs N] [--portfolio N] [--stats[=json]] [-q] \
[--timeout SECS] [--conflict-budget N] [--allow-partial] [--unroll K]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        faulty: String::new(),
        golden: String::new(),
        weights: None,
        targets: Vec::new(),
        output: None,
        localization: true,
        optimize: true,
        initial: InitialPatchKind::OnSet,
        jobs: 0,
        portfolio: 1,
        stats: StatsFormat::Off,
        quiet: false,
        timeout: None,
        conflict_budget: None,
        allow_partial: false,
        unroll: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match a.as_str() {
            "-f" | "--faulty" => args.faulty = value("-f")?,
            "-g" | "--golden" => args.golden = value("-g")?,
            "-w" | "--weights" => args.weights = Some(value("-w")?),
            "-o" | "--output" => args.output = Some(value("-o")?),
            "-t" | "--targets" => {
                args.targets = value("-t")?.split(',').map(str::to_string).collect()
            }
            "--no-localization" => args.localization = false,
            "--no-optimize" => args.optimize = false,
            "--initial" => {
                args.initial = match value("--initial")?.as_str() {
                    "onset" => InitialPatchKind::OnSet,
                    "negoff" => InitialPatchKind::NegOffSet,
                    "interpolant" => InitialPatchKind::Interpolant,
                    other => return Err(format!("unknown initial patch kind `{other}`")),
                }
            }
            "-j" | "--jobs" => {
                let v = value("--jobs")?;
                args.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a number, got `{v}`"))?;
            }
            "--portfolio" => {
                let v = value("--portfolio")?;
                args.portfolio = v
                    .parse()
                    .ok()
                    .filter(|n| (1..=4).contains(n))
                    .ok_or_else(|| format!("--portfolio expects 1..=4, got `{v}`"))?;
            }
            "--timeout" => {
                let v = value("--timeout")?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--timeout expects seconds, got `{v}`"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("--timeout expects non-negative seconds, got `{v}`"));
                }
                args.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--conflict-budget" => {
                let v = value("--conflict-budget")?;
                args.conflict_budget = Some(
                    v.parse()
                        .map_err(|_| format!("--conflict-budget expects a number, got `{v}`"))?,
                );
            }
            "--allow-partial" => args.allow_partial = true,
            "--unroll" => {
                let v = value("--unroll")?;
                args.unroll =
                    Some(v.parse().ok().filter(|&k| k >= 1).ok_or_else(|| {
                        format!("--unroll expects a frame count >= 1, got `{v}`")
                    })?);
            }
            "--stats" => args.stats = StatsFormat::Text,
            "--stats=json" => args.stats = StatsFormat::Json,
            "--stats=text" => args.stats = StatsFormat::Text,
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if args.faulty.is_empty() || args.golden.is_empty() || args.targets.is_empty() {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

/// Reads `.v` or `.blif` into an AIG plus its net map.
fn read_circuit(path: &str) -> Result<(eco_aig::Aig, HashMap<String, eco_aig::Lit>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if std::path::Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        == Some("blif")
    {
        let m = parse_blif(&text).map_err(|e| format!("{path}: {e}"))?;
        Ok((m.aig, m.net_lits))
    } else {
        let nl = parse_verilog(&text).map_err(|e| format!("{path}: {e}"))?;
        let e = eco_netlist::elaborate(&nl).map_err(|e| format!("{path}: {e}"))?;
        Ok((e.aig, e.net_lits))
    }
}

/// The sequential flow behind `--unroll K`.
fn run_seq(
    args: &Args,
    frames: usize,
    weights: WeightTable,
    options: EcoOptions,
) -> Result<i32, String> {
    use eco_seq::hub::{read_design, Format};
    use eco_seq::{SeqEcoEngine, SeqEcoError, SeqEcoOptions};

    let read_seq = |p: &str| -> Result<eco_seq::SeqNetlist, String> {
        let fmt = Format::from_path(p).map_err(|e| e.to_string())?;
        let data = std::fs::read(p).map_err(|e| format!("{p}: {e}"))?;
        read_design(fmt, &data).map_err(|e| format!("{p}: {e}"))
    };
    let faulty = read_seq(&args.faulty)?;
    let golden = read_seq(&args.golden)?;
    let options = SeqEcoOptions {
        frames,
        eco: options,
    };
    let engine = SeqEcoEngine::new(faulty, golden, args.targets.clone(), weights, options)
        .map_err(|e| e.to_string())?;
    let result = match engine.run() {
        Ok(r) => r,
        Err(SeqEcoError::Eco(eco_core::EcoError::Unrectifiable(why))) => {
            eprintln!("unrectifiable: {why}");
            return Ok(2);
        }
        Err(
            e @ (SeqEcoError::Degraded(_)
            | SeqEcoError::NotFramePure(_)
            | SeqEcoError::FoldFailed { .. }
            | SeqEcoError::VerifyUnknown),
        ) => {
            eprintln!("degraded: {e}");
            return Ok(4);
        }
        Err(e) => return Err(e.to_string()),
    };
    if !args.quiet {
        for (target, frame) in &result.fold_frames {
            eprintln!(
                "target {target}: folded from frame {frame}/{}",
                result.frames
            );
        }
        eprintln!(
            "patched and verified over {} frames: cost {}, size {}",
            result.frames, result.cost, result.size
        );
    }
    match args.stats {
        StatsFormat::Off => {}
        StatsFormat::Text => eprint!("{}", result.comb.telemetry),
        StatsFormat::Json => eprintln!("{}", result.comb.telemetry.to_json()),
    }
    let text = write_verilog(&netlist_from_aig(&result.patch_aig, "patch"));
    match &args.output {
        Some(p) => std::fs::write(p, text).map_err(|e| format!("{p}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(0)
}

fn run(args: &Args) -> Result<i32, String> {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let weights = match &args.weights {
        Some(p) => parse_weights(&read(p)?).map_err(|e| format!("{p}: {e}"))?,
        None => WeightTable::new(1),
    };
    let options = EcoOptions {
        localization: args.localization,
        optimize: args.optimize,
        initial_patch: args.initial,
        jobs: args.jobs,
        portfolio: args.portfolio,
        budget: BudgetOptions {
            timeout: args.timeout,
            cluster_conflicts: args.conflict_budget,
        },
        ..Default::default()
    };
    if let Some(frames) = args.unroll {
        return run_seq(args, frames, weights, options);
    }
    let is_verilog =
        |p: &str| std::path::Path::new(p).extension().and_then(|e| e.to_str()) != Some("blif");
    // Verilog inputs go through `from_netlists`, which filters base
    // candidates by *structural* target independence (constant folding can
    // hide a physical fanout path, and tapping such a net would wire a
    // combinational loop). BLIF loses the gate structure at parse time, so
    // that path keeps the AIG-level filter only (see
    // `EcoInstance::from_elaborated` docs).
    let instance = if is_verilog(&args.faulty) && is_verilog(&args.golden) {
        let faulty =
            parse_verilog(&read(&args.faulty)?).map_err(|e| format!("{}: {e}", args.faulty))?;
        let golden =
            parse_verilog(&read(&args.golden)?).map_err(|e| format!("{}: {e}", args.golden))?;
        EcoInstance::from_netlists("cli", &faulty, &golden, args.targets.clone(), &weights)
    } else {
        let (faulty_aig, faulty_nets) = read_circuit(&args.faulty)?;
        let (golden_aig, _) = read_circuit(&args.golden)?;
        EcoInstance::from_elaborated(
            "cli",
            faulty_aig,
            &faulty_nets,
            golden_aig,
            args.targets.clone(),
            &weights,
        )
    }
    .map_err(|e| e.to_string())?;

    let outcome = match EcoEngine::new(instance, options).run_governed() {
        Ok(o) => o,
        Err(eco_core::EcoError::Unrectifiable(why)) => {
            eprintln!("unrectifiable: {why}");
            return Ok(2);
        }
        Err(e) => return Err(e.to_string()),
    };

    let result = match outcome {
        EcoOutcome::Complete(result) => result,
        EcoOutcome::Partial(partial) => {
            if !args.quiet {
                eprint!("{}", eco_core::PartialReport(&partial));
            }
            match args.stats {
                StatsFormat::Off => {}
                StatsFormat::Text => eprint!("{}", partial.telemetry),
                StatsFormat::Json => eprintln!("{}", partial.telemetry.to_json()),
            }
            if args.allow_partial {
                let text = write_verilog(&netlist_from_aig(&partial.patch_aig, "patch"));
                match &args.output {
                    Some(p) => std::fs::write(p, text).map_err(|e| format!("{p}: {e}"))?,
                    None => print!("{text}"),
                }
            }
            return Ok(4);
        }
    };

    if !args.quiet {
        eprint!("{}", eco_core::Report(&result));
    }
    match args.stats {
        StatsFormat::Off => {}
        StatsFormat::Text => eprint!("{}", result.telemetry),
        StatsFormat::Json => eprintln!("{}", result.telemetry.to_json()),
    }
    let text = write_verilog(&netlist_from_aig(&result.patch_aig, "patch"));
    match &args.output {
        Some(p) => std::fs::write(p, text).map_err(|e| format!("{p}: {e}"))?,
        None => print!("{text}"),
    }
    Ok(0)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(code) => ExitCode::from(code as u8),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
