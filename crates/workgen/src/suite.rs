//! The fixed 20-unit benchmark suite.
//!
//! Mirrors the knob spread of the ICCAD 2017 contest suite used in the
//! paper's Table 2 (the contest circuits themselves are not public):
//! target counts from 1 to 12, several circuit families, and four
//! *difficult* units (6, 10, 11, 19) built on the [`shared_datapath`]
//! family with deep targets and cheap internal wires — the regime where
//! the paper reports its largest wins over the PI-support baseline.

use eco_aig::SplitMix64;
use eco_core::{EcoError, EcoInstance};
use eco_netlist::{Netlist, WeightTable};

use crate::circuits::{
    alu, barrel_shifter, comparator, multiplier, mux_tree, parity, random_dag, ripple_adder,
    shared_datapath,
};
use crate::fault::{assign_weights, cut_targets, scramble_dangling, WeightProfile};

/// A golden-circuit family with its size parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// [`ripple_adder`] of the given width.
    Adder(usize),
    /// [`alu`] of the given width.
    Alu(usize),
    /// [`comparator`] of the given width.
    Comparator(usize),
    /// [`parity`] over the given inputs.
    Parity(usize),
    /// [`mux_tree`] of the given depth.
    MuxTree(usize),
    /// [`random_dag`] with `(inputs, gates, outputs, seed)`.
    RandomDag(usize, usize, usize, u64),
    /// [`shared_datapath`] of the given width (the difficult family).
    Datapath(usize),
    /// [`multiplier`] of the given operand width.
    Multiplier(usize),
    /// [`barrel_shifter`] of the given data width.
    BarrelShifter(usize),
}

impl Family {
    /// Builds the golden netlist.
    pub fn build(self) -> Netlist {
        match self {
            Family::Adder(n) => ripple_adder(n),
            Family::Alu(n) => alu(n),
            Family::Comparator(n) => comparator(n),
            Family::Parity(n) => parity(n),
            Family::MuxTree(d) => mux_tree(d),
            Family::RandomDag(i, g, o, s) => random_dag(i, g, o, s),
            Family::Datapath(n) => shared_datapath(n),
            Family::Multiplier(n) => multiplier(n),
            Family::BarrelShifter(n) => barrel_shifter(n),
        }
    }
}

/// Where targets are picked from the (topologically ordered) live wires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetBias {
    /// Early wires (close to the inputs).
    Shallow,
    /// The middle of the netlist.
    Mid,
    /// Late wires (close to the outputs) — patches there need the most
    /// reconstructed logic, making localization matter.
    Deep,
}

/// The full specification of one benchmark unit.
#[derive(Clone, Debug)]
pub struct UnitSpec {
    /// Unit name (`unit01` .. `unit20`).
    pub name: String,
    /// Golden-circuit family.
    pub family: Family,
    /// Number of targets α.
    pub n_targets: usize,
    /// Target picking bias.
    pub bias: TargetBias,
    /// Weight assignment profile.
    pub weights: WeightProfile,
    /// Marked difficult in the Table-2 sense.
    pub difficult: bool,
    /// Seed for target picking, scrambling, and weights.
    pub seed: u64,
}

/// A fully materialized unit.
#[derive(Clone, Debug)]
pub struct SuiteUnit {
    /// The specification this unit was built from.
    pub spec: UnitSpec,
    /// Golden netlist.
    pub golden: Netlist,
    /// Faulty netlist (targets floating, dangling logic scrambled).
    pub faulty: Netlist,
    /// Target net names.
    pub targets: Vec<String>,
    /// Signal weights.
    pub weights: WeightTable,
}

impl SuiteUnit {
    /// Builds the validated [`EcoInstance`].
    ///
    /// # Errors
    ///
    /// Propagates [`EcoInstance::from_netlists`] validation failures
    /// (which indicate a generator bug, not user error).
    pub fn instance(&self) -> Result<EcoInstance, EcoError> {
        EcoInstance::from_netlists(
            self.spec.name.clone(),
            &self.faulty,
            &self.golden,
            self.targets.clone(),
            &self.weights,
        )
    }
}

/// Wires of `netlist` that transitively reach a primary output, in
/// declaration (≈ topological) order.
fn live_wires(netlist: &Netlist) -> Vec<String> {
    let mut live: std::collections::HashSet<&str> =
        netlist.outputs.iter().map(String::as_str).collect();
    loop {
        let before = live.len();
        for g in &netlist.gates {
            if live.contains(g.output.as_str()) {
                for i in &g.inputs {
                    if let Some(n) = i.name() {
                        live.insert(n);
                    }
                }
            }
        }
        if live.len() == before {
            break;
        }
    }
    netlist
        .wires
        .iter()
        .filter(|w| live.contains(w.as_str()))
        .cloned()
        .collect()
}

/// Picks `n` distinct live wires in the requested band.
fn pick_targets(netlist: &Netlist, n: usize, bias: TargetBias, seed: u64) -> Vec<String> {
    let wires = live_wires(netlist);
    assert!(wires.len() >= n, "{} live wires < {n} targets", wires.len());
    let (lo, hi) = match bias {
        TargetBias::Shallow => (0.0, 0.35),
        TargetBias::Mid => (0.30, 0.75),
        TargetBias::Deep => (0.70, 1.0),
    };
    let lo = (wires.len() as f64 * lo) as usize;
    let hi = ((wires.len() as f64 * hi) as usize)
        .max(lo + n)
        .min(wires.len());
    let band = &wires[lo..hi];
    let mut rng = SplitMix64::new(seed);
    let mut picked: Vec<String> = Vec::new();
    let mut guard = 0;
    while picked.len() < n {
        let w = band[rng.index(band.len())].clone();
        if !picked.contains(&w) {
            picked.push(w);
        }
        guard += 1;
        assert!(guard < 10_000, "target picking failed to converge");
    }
    picked.sort();
    picked
}

/// Materializes one unit from its spec.
pub fn build_unit(spec: &UnitSpec) -> SuiteUnit {
    let golden = spec.family.build();
    let targets = pick_targets(&golden, spec.n_targets, spec.bias, spec.seed);
    let mut faulty = cut_targets(&golden, &targets).expect("targets are driven live wires");
    let _ = scramble_dangling(&mut faulty, spec.seed ^ 0x5c4a_6b1e);
    let weights = assign_weights(&faulty, spec.weights, spec.seed ^ 0x77a0_11d3);
    SuiteUnit {
        spec: spec.clone(),
        golden,
        faulty,
        targets,
        weights,
    }
}

/// The 20 unit specifications (see module docs).
pub fn suite_specs() -> Vec<UnitSpec> {
    use Family::*;
    use TargetBias::*;
    use WeightProfile::*;
    let spec = |name: &str,
                family: Family,
                n_targets: usize,
                bias: TargetBias,
                weights: WeightProfile,
                difficult: bool,
                seed: u64| UnitSpec {
        name: name.to_string(),
        family,
        n_targets,
        bias,
        weights,
        difficult,
        seed,
    };
    vec![
        spec("unit01", Parity(8), 1, Mid, Unit, false, 101),
        spec(
            "unit02",
            MuxTree(3),
            1,
            Mid,
            Uniform { lo: 1, hi: 20 },
            false,
            102,
        ),
        spec(
            "unit03",
            Comparator(8),
            1,
            Shallow,
            Uniform { lo: 1, hi: 50 },
            false,
            103,
        ),
        spec(
            "unit04",
            Adder(6),
            1,
            Mid,
            CheapWires { pi: 30, wire: 3 },
            false,
            104,
        ),
        spec(
            "unit05",
            Adder(8),
            2,
            Mid,
            Uniform { lo: 1, hi: 30 },
            false,
            105,
        ),
        spec(
            "unit06",
            Datapath(10),
            2,
            Deep,
            CheapWires { pi: 60, wire: 2 },
            true,
            106,
        ),
        spec(
            "unit07",
            RandomDag(10, 120, 6, 701),
            1,
            Mid,
            Uniform { lo: 1, hi: 40 },
            false,
            107,
        ),
        spec(
            "unit08",
            Alu(5),
            1,
            Mid,
            Uniform { lo: 1, hi: 40 },
            false,
            108,
        ),
        spec(
            "unit09",
            Parity(12),
            4,
            Mid,
            Uniform { lo: 1, hi: 20 },
            false,
            109,
        ),
        spec(
            "unit10",
            Datapath(8),
            2,
            Deep,
            CheapWires { pi: 50, wire: 2 },
            true,
            110,
        ),
        spec(
            "unit11",
            Datapath(12),
            8,
            Deep,
            CheapWires { pi: 80, wire: 3 },
            true,
            111,
        ),
        spec(
            "unit12",
            Comparator(10),
            1,
            Mid,
            Uniform { lo: 1, hi: 100 },
            false,
            112,
        ),
        spec(
            "unit13",
            RandomDag(12, 200, 8, 1301),
            1,
            Deep,
            Uniform { lo: 50, hi: 200 },
            false,
            113,
        ),
        spec(
            "unit14",
            Alu(6),
            12,
            Mid,
            Uniform { lo: 1, hi: 20 },
            false,
            114,
        ),
        spec(
            "unit15",
            Adder(10),
            1,
            Deep,
            CheapWires { pi: 25, wire: 4 },
            false,
            115,
        ),
        spec(
            "unit16",
            MuxTree(4),
            2,
            Mid,
            Uniform { lo: 1, hi: 60 },
            false,
            116,
        ),
        spec(
            "unit17",
            RandomDag(12, 160, 8, 1701),
            8,
            Mid,
            Uniform { lo: 1, hi: 30 },
            false,
            117,
        ),
        spec(
            "unit18",
            Alu(4),
            1,
            Shallow,
            Uniform { lo: 1, hi: 10 },
            false,
            118,
        ),
        spec(
            "unit19",
            Datapath(14),
            4,
            Deep,
            CheapWires { pi: 100, wire: 2 },
            true,
            119,
        ),
        spec(
            "unit20",
            Adder(8),
            4,
            Mid,
            Uniform { lo: 1, hi: 30 },
            false,
            120,
        ),
    ]
}

/// Builds the full 20-unit suite.
pub fn contest_suite() -> Vec<SuiteUnit> {
    suite_specs().iter().map(build_unit).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twenty_valid_units() {
        let suite = contest_suite();
        assert_eq!(suite.len(), 20);
        for unit in &suite {
            let inst = unit.instance().expect("valid instance");
            assert_eq!(
                inst.num_targets(),
                unit.spec.n_targets,
                "{}",
                unit.spec.name
            );
            assert!(!inst.candidates.is_empty(), "{}", unit.spec.name);
        }
    }

    #[test]
    fn difficult_units_match_paper_slots() {
        let specs = suite_specs();
        let difficult: Vec<&str> = specs
            .iter()
            .filter(|s| s.difficult)
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(difficult, vec!["unit06", "unit10", "unit11", "unit19"]);
    }

    #[test]
    fn units_are_deterministic() {
        let a = build_unit(&suite_specs()[5]);
        let b = build_unit(&suite_specs()[5]);
        assert_eq!(a.faulty, b.faulty);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn target_counts_match_table2_spread() {
        let counts: Vec<usize> = suite_specs().iter().map(|s| s.n_targets).collect();
        assert_eq!(
            counts,
            vec![1, 1, 1, 1, 2, 2, 1, 1, 4, 2, 8, 1, 1, 12, 1, 2, 8, 1, 4, 4]
        );
    }

    #[test]
    fn targets_are_live_wires() {
        for unit in contest_suite() {
            for t in &unit.targets {
                assert!(
                    unit.golden.wires.contains(t),
                    "{}: target {t} must be a golden wire",
                    unit.spec.name
                );
                assert!(
                    unit.faulty.inputs.contains(t),
                    "{}: target {t} must float in faulty",
                    unit.spec.name
                );
            }
        }
    }
}

#[cfg(test)]
mod extended_family_tests {
    use super::*;

    #[test]
    fn extra_families_build_units() {
        for family in [Family::Multiplier(3), Family::BarrelShifter(4)] {
            let spec = UnitSpec {
                name: format!("{family:?}"),
                family,
                n_targets: 2,
                bias: TargetBias::Mid,
                weights: WeightProfile::Uniform { lo: 1, hi: 20 },
                difficult: false,
                seed: 77,
            };
            let unit = build_unit(&spec);
            let inst = unit.instance().expect("valid instance");
            assert_eq!(inst.num_targets(), 2);
        }
    }
}

/// Six heavier units beyond the Table-2 suite, exercising the extra
/// circuit families at larger sizes. Used by `table2 --stress` and the
/// stress tests; not part of the paper reproduction proper.
pub fn stress_specs() -> Vec<UnitSpec> {
    use Family::*;
    use TargetBias::*;
    use WeightProfile::*;
    let spec = |name: &str,
                family: Family,
                n_targets: usize,
                bias: TargetBias,
                weights: WeightProfile,
                seed: u64| UnitSpec {
        name: name.to_string(),
        family,
        n_targets,
        bias,
        weights,
        difficult: true,
        seed,
    };
    vec![
        spec(
            "stress01",
            Multiplier(5),
            2,
            Deep,
            CheapWires { pi: 80, wire: 2 },
            201,
        ),
        spec(
            "stress02",
            BarrelShifter(8),
            2,
            Mid,
            Uniform { lo: 1, hi: 40 },
            202,
        ),
        spec(
            "stress03",
            Datapath(16),
            6,
            Deep,
            CheapWires { pi: 120, wire: 2 },
            203,
        ),
        spec("stress04", Alu(8), 4, Mid, Uniform { lo: 1, hi: 30 }, 204),
        spec(
            "stress05",
            Adder(12),
            3,
            Deep,
            CheapWires { pi: 40, wire: 3 },
            205,
        ),
        spec(
            "stress06",
            RandomDag(14, 300, 8, 2077),
            3,
            Mid,
            Uniform { lo: 1, hi: 50 },
            206,
        ),
    ]
}

/// Builds the stress suite.
pub fn stress_suite() -> Vec<SuiteUnit> {
    stress_specs().iter().map(build_unit).collect()
}
