//! Ablation B (§6.2 trade-off): sensitivity to the Watch-window size β.
//!
//! The paper reports `|Watch| = β = 5` as a good quality/performance
//! trade-off; this sweep reproduces the trade-off curve on units with
//! non-trivial bases.

use std::time::Instant;

use eco_core::{BaseSelectOptions, EcoEngine, EcoOptions, OptimizeOptions};
use eco_workgen::contest_suite;

fn main() {
    let betas = [1usize, 3, 5, 8];
    println!("Ablation B: Watch-window size beta sweep");
    print!("{:<8} {:>4} |", "unit", "tgts");
    for b in betas {
        print!(" {:>8} {:>8} |", format!("cost b{b}"), format!("time b{b}"));
    }
    println!();
    for unit in contest_suite() {
        if !matches!(
            unit.spec.name.as_str(),
            "unit03" | "unit05" | "unit09" | "unit10" | "unit16"
        ) {
            continue;
        }
        let inst = unit.instance().expect("valid");
        print!("{:<8} {:>4} |", unit.spec.name, unit.spec.n_targets);
        for beta in betas {
            let opts = EcoOptions {
                optimize_opts: OptimizeOptions {
                    base_select: BaseSelectOptions {
                        watch_size: beta,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ..Default::default()
            };
            let t0 = Instant::now();
            let r = EcoEngine::new(inst.clone(), opts)
                .run()
                .expect("rectifiable");
            print!(" {:>8} {:>8.2} |", r.cost, t0.elapsed().as_secs_f64());
        }
        println!();
    }
}
