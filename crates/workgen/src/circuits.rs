//! Parameterized golden-circuit generators.
//!
//! These are the workload families behind the synthetic benchmark suite
//! (the ICCAD 2017 contest circuits are not public; see DESIGN.md §4).
//! Every generator returns a plain gate-level [`Netlist`] with
//! systematically named internal wires, so fault injection can cut any
//! net and weight files can address every signal.

use eco_aig::SplitMix64;
use eco_netlist::{GateKind, Netlist};

use crate::builder::NetlistBuilder;

/// An `n`-bit ripple-carry adder: `sum = a + b + cin` (n+1 outputs).
pub fn ripple_adder(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("adder{n}"));
    let a = b.inputs("a", n);
    let bb = b.inputs("b", n);
    let mut carry = b.input("cin");
    for i in 0..n {
        let axb = b.xor2(&a[i], &bb[i]);
        let s = b.xor2(&axb, &carry);
        let g = b.and2(&a[i], &bb[i]);
        let p = b.and2(&axb, &carry);
        carry = b.or2(&g, &p);
        b.output(format!("s{i}"), &s);
    }
    b.output("cout", &carry);
    b.finish()
}

/// An `n`-bit two-operand ALU with ops AND/OR/XOR/ADD selected by
/// `(op1, op0)`.
pub fn alu(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("alu{n}"));
    let a = b.inputs("a", n);
    let bb = b.inputs("b", n);
    let op0 = b.input("op0");
    let op1 = b.input("op1");
    // Constant-0 start carry built as op0 & !op0.
    let nop0 = b.not1(&op0);
    let mut carry = b.and2(&op0, &nop0);
    for i in 0..n {
        let and_i = b.and2(&a[i], &bb[i]);
        let or_i = b.or2(&a[i], &bb[i]);
        let xor_i = b.xor2(&a[i], &bb[i]);
        let sum_i = b.xor2(&xor_i, &carry);
        let p = b.and2(&xor_i, &carry);
        carry = b.or2(&and_i, &p);
        // out = op1 ? (op0 ? add : xor) : (op0 ? or : and)
        let hi = b.mux2(&op0, &sum_i, &xor_i);
        let lo = b.mux2(&op0, &or_i, &and_i);
        let out = b.mux2(&op1, &hi, &lo);
        b.output(format!("y{i}"), &out);
    }
    b.finish()
}

/// An `n`-bit equality + less-than comparator (`eq`, `lt` outputs).
pub fn comparator(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("cmp{n}"));
    let a = b.inputs("a", n);
    let bb = b.inputs("b", n);
    let mut eq = {
        let x = b.xor2(&a[0], &bb[0]);
        b.not1(&x)
    };
    let mut lt = {
        let na = b.not1(&a[0]);
        b.and2(&na, &bb[0])
    };
    for i in 1..n {
        let x = b.xor2(&a[i], &bb[i]);
        let eq_i = b.not1(&x);
        let na = b.not1(&a[i]);
        let lt_i = b.and2(&na, &bb[i]);
        // lt = lt_i | (eq_i & lt)
        let keep = b.and2(&eq_i, &lt);
        lt = b.or2(&lt_i, &keep);
        eq = b.and2(&eq, &eq_i);
    }
    b.output("eq", &eq);
    b.output("lt", &lt);
    b.finish()
}

/// An `n`-input odd-parity tree.
pub fn parity(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("parity{n}"));
    let ins = b.inputs("i", n);
    let mut level: Vec<String> = ins;
    while level.len() > 1 {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(b.xor2(&pair[0], &pair[1]));
            } else {
                next.push(pair[0].clone());
            }
        }
        level = next;
    }
    b.output("p", &level[0]);
    b.finish()
}

/// A mux tree selecting one of `2^depth` data inputs.
pub fn mux_tree(depth: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("mux{depth}"));
    let data = b.inputs("d", 1 << depth);
    let sel = b.inputs("s", depth);
    let mut level = data;
    for s in &sel {
        let mut next = Vec::new();
        for pair in level.chunks(2) {
            next.push(b.mux2(s, &pair[1], &pair[0]));
        }
        level = next;
    }
    b.output("y", &level[0]);
    b.finish()
}

/// A random two-input-gate DAG: `n_gates` gates over `n_inputs` inputs;
/// the last `n_outputs` gate nets become outputs. Deterministic in `seed`.
pub fn random_dag(n_inputs: usize, n_gates: usize, n_outputs: usize, seed: u64) -> Netlist {
    let mut rng = SplitMix64::new(seed);
    let mut b = NetlistBuilder::new(format!("rand{n_inputs}x{n_gates}"));
    let mut nets: Vec<String> = b.inputs("i", n_inputs);
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xnor,
    ];
    for _ in 0..n_gates {
        let kind = kinds[rng.index(kinds.len())];
        // Bias towards recent nets for depth.
        let pick = |rng: &mut SplitMix64, nets: &[String]| -> String {
            let n = nets.len();
            let lo = n.saturating_sub(24);
            nets[lo + rng.index(n - lo)].clone()
        };
        let x = pick(&mut rng, &nets);
        let y = pick(&mut rng, &nets);
        let w = b.gate(kind, &[&x, &y]);
        nets.push(w);
    }
    let n_outputs = n_outputs.min(nets.len());
    for (k, net) in nets.iter().rev().take(n_outputs).enumerate() {
        b.output(format!("o{k}"), net);
    }
    b.finish()
}

/// The "difficult unit" family: a wide shared datapath (adder + parity +
/// comparator over the same operands) feeding a small combiner layer.
/// Cutting combiner nets forces a PI-only method to replicate the whole
/// datapath, while localization can tap the shared intermediate buses.
pub fn shared_datapath(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("datapath{n}"));
    let a = b.inputs("a", n);
    let bb = b.inputs("b", n);
    let cin = b.input("cin");

    // Adder bus s0..s(n-1), cout.
    let mut carry = cin;
    let mut sums = Vec::new();
    for i in 0..n {
        let axb = b.xor2(&a[i], &bb[i]);
        let s = b.xor2(&axb, &carry);
        let g = b.and2(&a[i], &bb[i]);
        let p = b.and2(&axb, &carry);
        carry = b.or2(&g, &p);
        sums.push(s);
    }
    // Parity of the sum bus.
    let mut par = sums[0].clone();
    for s in &sums[1..] {
        par = b.xor2(&par, s);
    }
    // Equality a == b.
    let mut eq = {
        let x = b.xor2(&a[0], &bb[0]);
        b.not1(&x)
    };
    for i in 1..n {
        let x = b.xor2(&a[i], &bb[i]);
        let e = b.not1(&x);
        eq = b.and2(&eq, &e);
    }
    // Combiner layer: a handful of outputs mixing the shared buses.
    let k1 = b.and2(&par, &carry);
    let k2 = b.mux2(&eq, &sums[0], &par);
    let k3 = b.xor2(&k1, &k2);
    let k4 = b.or2(&eq, &k1);
    b.output("combine0", &k3);
    b.output("combine1", &k4);
    for (i, s) in sums.iter().enumerate().take(4) {
        b.output(format!("sum{i}"), s);
    }
    b.output("parity", &par);
    b.output("eq", &eq);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::elaborate;

    fn eval(nl: &Netlist, bits: &[bool]) -> Vec<bool> {
        elaborate(nl).expect("elaborates").aig.eval(bits)
    }

    #[test]
    fn adder_adds() {
        let nl = ripple_adder(4);
        // inputs: a0..3, b0..3, cin
        for (a, b, cin) in [(3u32, 5u32, 0u32), (15, 15, 1), (9, 6, 1), (0, 0, 0)] {
            let mut bits = Vec::new();
            for i in 0..4 {
                bits.push(a >> i & 1 == 1);
            }
            for i in 0..4 {
                bits.push(b >> i & 1 == 1);
            }
            bits.push(cin == 1);
            let out = eval(&nl, &bits);
            let total = a + b + cin;
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, total >> i & 1 == 1, "bit {i} of {a}+{b}+{cin}");
            }
        }
    }

    #[test]
    fn alu_selects_operations() {
        let nl = alu(3);
        // inputs: a0..2, b0..2, op0, op1.
        let a = 0b101u32;
        let b = 0b011u32;
        for (op, expect) in [
            (0b00u32, a & b),
            (0b01, a | b),
            (0b10, a ^ b),
            (0b11, (a + b) & 0b111),
        ] {
            let mut bits = Vec::new();
            for i in 0..3 {
                bits.push(a >> i & 1 == 1);
            }
            for i in 0..3 {
                bits.push(b >> i & 1 == 1);
            }
            bits.push(op & 1 == 1);
            bits.push(op >> 1 & 1 == 1);
            let out = eval(&nl, &bits);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, expect >> i & 1 == 1, "op {op:02b} bit {i}");
            }
        }
    }

    #[test]
    fn comparator_compares() {
        let nl = comparator(3);
        for a in 0u32..8 {
            for b in 0u32..8 {
                let mut bits = Vec::new();
                for i in 0..3 {
                    bits.push(a >> i & 1 == 1);
                }
                for i in 0..3 {
                    bits.push(b >> i & 1 == 1);
                }
                let out = eval(&nl, &bits);
                assert_eq!(out[0], a == b, "{a} == {b}");
                assert_eq!(out[1], a < b, "{a} < {b}");
            }
        }
    }

    #[test]
    fn parity_counts_ones() {
        let nl = parity(5);
        for bits_val in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| bits_val >> i & 1 == 1).collect();
            let ones = bits.iter().filter(|&&x| x).count();
            assert_eq!(eval(&nl, &bits), vec![ones % 2 == 1]);
        }
    }

    #[test]
    fn mux_tree_selects() {
        let nl = mux_tree(2);
        // inputs: d0..3, s0, s1.
        for sel in 0u32..4 {
            let mut bits = vec![false; 4];
            bits[sel as usize] = true;
            bits.push(sel & 1 == 1);
            bits.push(sel >> 1 & 1 == 1);
            assert_eq!(eval(&nl, &bits), vec![true], "sel {sel}");
        }
    }

    #[test]
    fn random_dag_is_deterministic_and_valid() {
        let n1 = random_dag(6, 40, 4, 7);
        let n2 = random_dag(6, 40, 4, 7);
        assert_eq!(n1, n2);
        let e = elaborate(&n1).expect("elaborates");
        assert_eq!(e.aig.num_outputs(), 4);
    }

    #[test]
    fn shared_datapath_elaborates() {
        let nl = shared_datapath(6);
        let e = elaborate(&nl).expect("elaborates");
        assert!(e.aig.num_ands() > 50);
        assert_eq!(e.aig.num_outputs(), 8);
    }
}

/// An `n`×`n`-bit array multiplier (2n product outputs).
pub fn multiplier(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(format!("mult{n}"));
    let a = b.inputs("a", n);
    let bb = b.inputs("b", n);
    // Partial products, summed row by row with ripple adders.
    let mut acc: Vec<Option<String>> = vec![None; 2 * n];
    for (i, ai) in a.iter().enumerate() {
        // Row i: a_i & b_j at weight i + j.
        let row: Vec<String> = bb.iter().map(|bj| b.and2(ai, bj)).collect();
        let mut carry: Option<String> = None;
        for (j, pp) in row.into_iter().enumerate() {
            let w = i + j;
            let mut bits: Vec<String> = vec![pp];
            if let Some(c) = carry.take() {
                bits.push(c);
            }
            if let Some(prev) = acc[w].take() {
                bits.push(prev);
            }
            // Sum 1-3 bits into (sum, carry).
            match bits.len() {
                1 => acc[w] = Some(bits.pop().expect("one bit")),
                2 => {
                    let s = b.xor2(&bits[0], &bits[1]);
                    let c = b.and2(&bits[0], &bits[1]);
                    acc[w] = Some(s);
                    carry = Some(c);
                }
                _ => {
                    let x = b.xor2(&bits[0], &bits[1]);
                    let s = b.xor2(&x, &bits[2]);
                    let g = b.and2(&bits[0], &bits[1]);
                    let p = b.and2(&x, &bits[2]);
                    let c = b.or2(&g, &p);
                    acc[w] = Some(s);
                    carry = Some(c);
                }
            }
        }
        // Propagate the final carry of this row upward.
        let mut w = i + n;
        while let Some(c) = carry.take() {
            match acc[w].take() {
                None => acc[w] = Some(c),
                Some(prev) => {
                    let s = b.xor2(&prev, &c);
                    let nc = b.and2(&prev, &c);
                    acc[w] = Some(s);
                    carry = Some(nc);
                    w += 1;
                }
            }
        }
    }
    for (w, bit) in acc.into_iter().enumerate() {
        match bit {
            Some(net) => b.output(format!("p{w}"), &net),
            None => {
                // Weight never produced (can happen only for p_{2n-1} of
                // small n): emit constant 0 via x & !x on a0.
                let na = b.not1(&a[0]);
                let zero = b.and2(&a[0], &na);
                b.output(format!("p{w}"), &zero);
            }
        }
    }
    b.finish()
}

/// An `n`-bit logical barrel shifter: `y = d << s` (zero fill), with
/// `ceil(log2 n)` shift-select inputs.
pub fn barrel_shifter(n: usize) -> Netlist {
    let stages = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let mut b = NetlistBuilder::new(format!("bshift{n}"));
    let d = b.inputs("d", n);
    let s = b.inputs("s", stages);
    // Constant zero for fill.
    let nd = b.not1(&d[0]);
    let zero = b.and2(&d[0], &nd);
    let mut layer = d;
    for (k, sk) in s.iter().enumerate() {
        let shift = 1usize << k;
        let mut next = Vec::with_capacity(n);
        for i in 0..n {
            let shifted = if i >= shift {
                layer[i - shift].clone()
            } else {
                zero.clone()
            };
            next.push(b.mux2(sk, &shifted, &layer[i]));
        }
        layer = next;
    }
    for (i, net) in layer.iter().enumerate() {
        b.output(format!("y{i}"), net);
    }
    b.finish()
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use eco_netlist::elaborate;

    #[test]
    fn multiplier_multiplies() {
        let nl = multiplier(4);
        let e = elaborate(&nl).expect("elaborates");
        for a in 0u32..16 {
            for b in 0u32..16 {
                let mut bits = Vec::new();
                for i in 0..4 {
                    bits.push(a >> i & 1 == 1);
                }
                for i in 0..4 {
                    bits.push(b >> i & 1 == 1);
                }
                let out = e.aig.eval(&bits);
                let product = a * b;
                for (i, &o) in out.iter().enumerate() {
                    assert_eq!(o, product >> i & 1 == 1, "{a}*{b} bit {i}");
                }
            }
        }
    }

    #[test]
    fn barrel_shifter_shifts() {
        let nl = barrel_shifter(8);
        let e = elaborate(&nl).expect("elaborates");
        for d in [0b1011_0010u32, 0b0000_0001, 0b1111_1111] {
            for s in 0u32..8 {
                let mut bits = Vec::new();
                for i in 0..8 {
                    bits.push(d >> i & 1 == 1);
                }
                for i in 0..3 {
                    bits.push(s >> i & 1 == 1);
                }
                let out = e.aig.eval(&bits);
                let expect = (d << s) & 0xff;
                for (i, &o) in out.iter().enumerate() {
                    assert_eq!(o, expect >> i & 1 == 1, "{d:#010b} << {s} bit {i}");
                }
            }
        }
    }
}
