//! Weight-file parsing and writing.
//!
//! The ICCAD 2017 contest supplies a weight per faulty-circuit signal; the
//! patch cost is the sum over base signals. The format is one
//! `<net> <weight>` pair per line; `#` and `//` comments are ignored.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced when a weight file cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWeightsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseWeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseWeightsError {}

/// Signal weights by net name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WeightTable {
    weights: HashMap<String, u64>,
    /// Weight assumed for nets not listed.
    pub default_weight: u64,
}

impl WeightTable {
    /// Creates an empty table with the given default weight.
    pub fn new(default_weight: u64) -> Self {
        WeightTable {
            weights: HashMap::new(),
            default_weight,
        }
    }

    /// Sets the weight of a net.
    pub fn set(&mut self, net: impl Into<String>, weight: u64) {
        self.weights.insert(net.into(), weight);
    }

    /// Returns the weight of `net` (default if unlisted).
    pub fn weight(&self, net: &str) -> u64 {
        self.weights
            .get(net)
            .copied()
            .unwrap_or(self.default_weight)
    }

    /// Number of explicitly listed nets.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if no net is explicitly listed.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Iterates `(net, weight)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.weights.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, u64)> for WeightTable {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> Self {
        WeightTable {
            weights: iter.into_iter().collect(),
            default_weight: 1,
        }
    }
}

/// Parses a weight file.
///
/// # Errors
///
/// Returns [`ParseWeightsError`] on malformed lines or duplicate nets.
///
/// # Examples
///
/// ```
/// let w = eco_netlist::parse_weights("n1 10\nn2 3\n# comment\n")?;
/// assert_eq!(w.weight("n1"), 10);
/// assert_eq!(w.weight("unlisted"), 1);
/// # Ok::<(), eco_netlist::ParseWeightsError>(())
/// ```
pub fn parse_weights(text: &str) -> Result<WeightTable, ParseWeightsError> {
    let mut table = WeightTable::new(1);
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let mut parts = line.split_whitespace();
        let net = parts.next().expect("non-empty line");
        let weight_tok = parts.next().ok_or(ParseWeightsError {
            line: line_no,
            message: "expected `<net> <weight>`".into(),
        })?;
        if parts.next().is_some() {
            return Err(ParseWeightsError {
                line: line_no,
                message: "trailing tokens".into(),
            });
        }
        let weight: u64 = weight_tok.parse().map_err(|_| ParseWeightsError {
            line: line_no,
            message: format!("invalid weight `{weight_tok}`"),
        })?;
        if table.weights.insert(net.to_string(), weight).is_some() {
            return Err(ParseWeightsError {
                line: line_no,
                message: format!("duplicate net `{net}`"),
            });
        }
    }
    Ok(table)
}

/// Writes a weight table (sorted by net name for determinism).
pub fn write_weights(table: &WeightTable) -> String {
    let mut entries: Vec<(&str, u64)> = table.iter().collect();
    entries.sort();
    let mut s = String::new();
    for (net, w) in entries {
        s.push_str(net);
        s.push(' ');
        s.push_str(&w.to_string());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basics() {
        let w = parse_weights("a 1\nb 100\n\n# c 5\n// d 6\n").expect("parse");
        assert_eq!(w.len(), 2);
        assert_eq!(w.weight("b"), 100);
        assert_eq!(w.weight("c"), 1);
    }

    #[test]
    fn round_trip() {
        let mut w = WeightTable::new(1);
        w.set("x", 7);
        w.set("a", 3);
        let text = write_weights(&w);
        assert_eq!(text, "a 3\nx 7\n");
        assert_eq!(parse_weights(&text).expect("parse"), w);
    }

    #[test]
    fn errors() {
        assert!(parse_weights("a\n").is_err());
        assert!(parse_weights("a b\n").is_err());
        assert!(parse_weights("a 1 2\n").is_err());
        assert!(parse_weights("a 1\na 2\n").is_err());
    }

    #[test]
    fn from_iterator() {
        let w: WeightTable = vec![("n".to_string(), 4u64)].into_iter().collect();
        assert_eq!(w.weight("n"), 4);
        assert!(!w.is_empty());
    }
}
