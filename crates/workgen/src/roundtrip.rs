//! Differential fuzzing of the format hub: round-trip campaigns over
//! format pairs with a SAT miter oracle.
//!
//! Each case is a seeded design (combinational DAG, shift-register
//! bank, or random sequential DAG — the [`crate::seqgen`] families).
//! The oracle pushes it through every legal format, checks the
//! write → parse → write byte fixpoint, then through every ordered
//! *pair* of formats, and proves the survivor equivalent to the
//! original with a k-frame unrolled SAT miter ([`eco_seq::unroll_miter`],
//! [`eco_core::check_equivalence`]) — cycle-accurate from reset, with
//! don't-care initial states universally quantified as shared free
//! inputs. Failures are greedily shrunk by shrinking the *generator
//! parameters* (the case is its parameter vector, so the shrunk case
//! replays exactly) and can be serialized as `.rtcase` files for the
//! corpus replay test.

use std::fmt;

use eco_core::{check_equivalence, VerifyOutcome};
use eco_seq::hub::{read_design, write_design, Format};
use eco_seq::{unroll_miter, SeqNetlist};

use eco_aig::SplitMix64;

use crate::seqgen::{random_seq_dag, shift_register_datapath};

/// Oracle knobs for the round-trip campaign.
#[derive(Clone, Copy, Debug)]
pub struct RtConfig {
    /// Unroll depth of the equivalence miter.
    pub frames: usize,
    /// Conflict budget per SAT equivalence check.
    pub conflict_budget: u64,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            frames: 3,
            conflict_budget: 100_000,
        }
    }
}

/// Design family of a round-trip case.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RtFamily {
    /// Combinational random DAG (no latches; Verilog and CNF join the
    /// format set).
    Comb,
    /// Shift-register bank with a reduction tree.
    ShiftBank,
    /// Random sequential DAG with feedback.
    SeqDag,
}

impl RtFamily {
    fn tag(self) -> &'static str {
        match self {
            RtFamily::Comb => "comb",
            RtFamily::ShiftBank => "shiftbank",
            RtFamily::SeqDag => "seqdag",
        }
    }

    fn from_tag(tag: &str) -> Option<RtFamily> {
        match tag {
            "comb" => Some(RtFamily::Comb),
            "shiftbank" => Some(RtFamily::ShiftBank),
            "seqdag" => Some(RtFamily::SeqDag),
            _ => None,
        }
    }
}

/// A round-trip case **is** its generator parameter vector: rebuilding
/// from the parameters is deterministic, so serializing the numbers
/// reproduces the design bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RtCase {
    /// Generator seed.
    pub seed: u64,
    /// Design family.
    pub family: RtFamily,
    /// Primary input count (shift bank: register count).
    pub inputs: usize,
    /// Gate count (shift bank: stage depth).
    pub gates: usize,
    /// Latch count (ignored for `Comb` and `ShiftBank`).
    pub latches: usize,
}

impl RtCase {
    /// Derives a case from a campaign seed.
    pub fn from_seed(seed: u64) -> RtCase {
        let mut rng = SplitMix64::new(seed ^ 0x0f0e_a7b1_5c3d_2e19);
        let family = match rng.below(3) {
            0 => RtFamily::Comb,
            1 => RtFamily::ShiftBank,
            _ => RtFamily::SeqDag,
        };
        RtCase {
            seed,
            family,
            inputs: 2 + rng.index(4),
            gates: 4 + rng.index(14),
            latches: 1 + rng.index(4),
        }
    }

    /// Rebuilds the design from the parameters.
    pub fn build(&self) -> SeqNetlist {
        match self.family {
            RtFamily::Comb => {
                // A sequential DAG with the latch records stripped: the
                // state nets become ordinary primary inputs.
                let d = random_seq_dag(self.inputs, self.gates, 1, self.seed);
                SeqNetlist::new(format!("{}_comb", d.name), d.aig, Vec::new(), d.net_lits)
                    .expect("no latches to validate")
            }
            RtFamily::ShiftBank => {
                shift_register_datapath(self.inputs.max(1), self.gates.clamp(1, 6), self.seed)
            }
            RtFamily::SeqDag => random_seq_dag(self.inputs, self.gates, self.latches, self.seed),
        }
    }

    /// Formats this design can legally round-trip through.
    pub fn formats(&self) -> Vec<Format> {
        let mut fmts = vec![
            Format::Blif,
            Format::AigerAscii,
            Format::AigerBinary,
            Format::Btor2,
        ];
        if self.family == RtFamily::Comb {
            fmts.push(Format::Verilog);
        }
        fmts
    }

    /// Serializes the case as a small `key value` text block.
    pub fn to_text(&self) -> String {
        format!(
            "rtcase v1\nseed {}\nfamily {}\ninputs {}\ngates {}\nlatches {}\n",
            self.seed,
            self.family.tag(),
            self.inputs,
            self.gates,
            self.latches
        )
    }

    /// Parses [`RtCase::to_text`] output.
    pub fn from_text(text: &str) -> Result<RtCase, String> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some("rtcase v1") {
            return Err("missing `rtcase v1` header".into());
        }
        let mut case = RtCase {
            seed: 0,
            family: RtFamily::Comb,
            inputs: 1,
            gates: 1,
            latches: 1,
        };
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, val) = line
                .split_once(' ')
                .ok_or_else(|| format!("malformed line `{line}`"))?;
            let num = || {
                val.parse::<u64>()
                    .map_err(|_| format!("`{key}` expects a number, got `{val}`"))
            };
            match key {
                "seed" => case.seed = num()?,
                "family" => {
                    case.family =
                        RtFamily::from_tag(val).ok_or_else(|| format!("unknown family `{val}`"))?;
                }
                "inputs" => case.inputs = num()? as usize,
                "gates" => case.gates = num()? as usize,
                "latches" => case.latches = num()? as usize,
                other => return Err(format!("unknown key `{other}`")),
            }
        }
        Ok(case)
    }
}

/// A failed hop: which conversion chain broke and how.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RtFailure {
    /// The case that failed (possibly shrunk).
    pub case: RtCase,
    /// The conversion chain, e.g. `blif->btor2`.
    pub hop: String,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for RtFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {:#x} ({}) at {}: {}",
            self.case.seed,
            self.case.family.tag(),
            self.hop,
            self.detail
        )
    }
}

/// Outcome of the oracle on one case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtOutcome {
    /// Every hop preserved behavior and the writers stayed fixpoints.
    Pass,
    /// The SAT budget ran out; not a bug.
    Skip(String),
    /// A genuine hub bug.
    Fail {
        /// The conversion chain that broke.
        hop: String,
        /// Human-readable detail.
        detail: String,
    },
}

/// Aggregated campaign telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Cases generated and run.
    pub cases: u64,
    /// Cases where every hop passed.
    pub passes: u64,
    /// Budget-limited cases.
    pub skips: u64,
    /// Genuine failures (before shrinking).
    pub failures: u64,
    /// Shrink reductions attempted.
    pub shrink_steps: u64,
    /// Shrink reductions that kept the failure alive.
    pub shrink_accepted: u64,
}

fn equivalent(
    original: &SeqNetlist,
    candidate: &SeqNetlist,
    hop: &str,
    cfg: &RtConfig,
) -> Result<(), RtOutcome> {
    if candidate.latches.len() != original.latches.len() {
        return Err(RtOutcome::Fail {
            hop: hop.to_string(),
            detail: format!(
                "latch count changed: {} -> {}",
                original.latches.len(),
                candidate.latches.len()
            ),
        });
    }
    let (mut miter, pairs) = match unroll_miter(original, candidate, cfg.frames) {
        Ok(m) => m,
        Err(e) => {
            return Err(RtOutcome::Fail {
                hop: hop.to_string(),
                detail: format!("miter construction failed: {e}"),
            })
        }
    };
    match check_equivalence(&mut miter, &pairs, cfg.conflict_budget) {
        VerifyOutcome::Equivalent => Ok(()),
        VerifyOutcome::Unknown => Err(RtOutcome::Skip(format!("{hop}: miter budget exhausted"))),
        VerifyOutcome::Counterexample(cex) => {
            let mut cex: Vec<String> = cex
                .iter()
                .map(|(n, v)| format!("{n}={}", *v as u8))
                .collect();
            cex.sort();
            Err(RtOutcome::Fail {
                hop: hop.to_string(),
                detail: format!("behavior diverged under {}", cex.join(" ")),
            })
        }
    }
}

/// Runs the full oracle on one case: per-format byte fixpoint, then
/// every ordered format pair, each proved against the original design.
pub fn run_rt_case(case: &RtCase, cfg: &RtConfig) -> RtOutcome {
    let original = case.build();
    let fmts = case.formats();
    let fail = |hop: &str, detail: String| RtOutcome::Fail {
        hop: hop.to_string(),
        detail,
    };
    // Single hops, with byte-fixpoint check, keeping the parsed designs
    // for the pair stage.
    let mut parsed: Vec<SeqNetlist> = Vec::with_capacity(fmts.len());
    for &a in &fmts {
        let hop = a.name().to_string();
        let bytes = match write_design(a, &original) {
            Ok(b) => b,
            Err(e) => return fail(&hop, format!("write failed: {e}")),
        };
        let back = match read_design(a, &bytes) {
            Ok(d) => d,
            Err(e) => return fail(&hop, format!("reparse failed: {e}")),
        };
        // Verilog names nets by AIG numbering, so its writer is only a
        // fixpoint modulo renaming; the canonical writers must be exact.
        if a != Format::Verilog {
            match write_design(a, &back) {
                Ok(again) if again == bytes => {}
                Ok(_) => return fail(&hop, "write→parse→write is not a byte fixpoint".into()),
                Err(e) => return fail(&hop, format!("re-write failed: {e}")),
            }
        }
        if let Err(out) = equivalent(&original, &back, &hop, cfg) {
            return out;
        }
        parsed.push(back);
    }
    // Ordered pairs: the A-parsed design through B and back.
    for (i, &a) in fmts.iter().enumerate() {
        for &b in &fmts {
            if a == b {
                continue;
            }
            let hop = format!("{}->{}", a.name(), b.name());
            let bytes = match write_design(b, &parsed[i]) {
                Ok(bts) => bts,
                Err(e) => return fail(&hop, format!("write failed: {e}")),
            };
            let back = match read_design(b, &bytes) {
                Ok(d) => d,
                Err(e) => return fail(&hop, format!("reparse failed: {e}")),
            };
            if let Err(out) = equivalent(&original, &back, &hop, cfg) {
                return out;
            }
        }
    }
    // CNF is export-only: check the Tseitin DIMACS is well-formed.
    if case.family == RtFamily::Comb {
        match write_design(Format::Cnf, &original) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                if !text.contains("p cnf ") {
                    return fail("cnf", "missing DIMACS header".into());
                }
            }
            Err(e) => return fail("cnf", format!("export failed: {e}")),
        }
    }
    RtOutcome::Pass
}

/// Greedily shrinks a failing case by shrinking its generator
/// parameters; a reduction is kept when the smaller case still fails
/// (any hop). Returns the shrunk case and its failure.
pub fn shrink_rt_case(
    case: &RtCase,
    cfg: &RtConfig,
    stats: &mut RtStats,
) -> (RtCase, String, String) {
    let mut best = case.clone();
    let (mut hop, mut detail) = match run_rt_case(&best, cfg) {
        RtOutcome::Fail { hop, detail } => (hop, detail),
        _ => return (best, "unstable".into(), "failure did not reproduce".into()),
    };
    loop {
        let mut reduced = false;
        let candidates = [
            RtCase {
                gates: best.gates / 2,
                ..best.clone()
            },
            RtCase {
                inputs: best.inputs / 2,
                ..best.clone()
            },
            RtCase {
                latches: best.latches / 2,
                ..best.clone()
            },
            RtCase {
                gates: best.gates.saturating_sub(1),
                ..best.clone()
            },
            RtCase {
                inputs: best.inputs.saturating_sub(1),
                ..best.clone()
            },
            RtCase {
                latches: best.latches.saturating_sub(1),
                ..best.clone()
            },
        ];
        for cand in candidates {
            if cand == best || cand.inputs == 0 || cand.gates == 0 {
                continue;
            }
            if cand.family != RtFamily::Comb && cand.latches == 0 {
                continue;
            }
            stats.shrink_steps += 1;
            if let RtOutcome::Fail { hop: h, detail: d } = run_rt_case(&cand, cfg) {
                stats.shrink_accepted += 1;
                best = cand;
                hop = h;
                detail = d;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (best, hop, detail);
        }
    }
}

/// Runs `iters` seeded round-trip cases; `progress(done, stats)` is
/// called after each. Returns the stats and the (shrunk) failures.
pub fn run_rt_campaign(
    iters: u64,
    seed0: u64,
    cfg: &RtConfig,
    shrink: bool,
    mut progress: impl FnMut(u64, &RtStats),
) -> (RtStats, Vec<RtFailure>) {
    let mut stats = RtStats::default();
    let mut failures = Vec::new();
    for i in 0..iters {
        let case = RtCase::from_seed(seed0.wrapping_add(i));
        stats.cases += 1;
        match run_rt_case(&case, cfg) {
            RtOutcome::Pass => stats.passes += 1,
            RtOutcome::Skip(_) => stats.skips += 1,
            RtOutcome::Fail { hop, detail } => {
                stats.failures += 1;
                let (case, hop, detail) = if shrink {
                    shrink_rt_case(&case, cfg, &mut stats)
                } else {
                    (case, hop, detail)
                };
                failures.push(RtFailure { case, hop, detail });
            }
        }
        progress(i + 1, &stats);
    }
    (stats, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_text_round_trips() {
        let case = RtCase::from_seed(77);
        let back = RtCase::from_text(&case.to_text()).expect("parses");
        assert_eq!(back, case);
        assert!(RtCase::from_text("bogus").is_err());
        assert!(RtCase::from_text("rtcase v1\nfamily martian\n").is_err());
    }

    #[test]
    fn all_families_pass_the_oracle() {
        let cfg = RtConfig::default();
        for (family, latches) in [
            (RtFamily::Comb, 1),
            (RtFamily::ShiftBank, 1),
            (RtFamily::SeqDag, 3),
        ] {
            let case = RtCase {
                seed: 11,
                family,
                inputs: 3,
                gates: 8,
                latches,
            };
            assert_eq!(run_rt_case(&case, &cfg), RtOutcome::Pass, "{family:?}");
        }
    }

    #[test]
    fn campaign_smoke_is_clean() {
        let cfg = RtConfig::default();
        let (stats, failures) = run_rt_campaign(12, 0x5eed, &cfg, true, |_, _| {});
        assert_eq!(stats.cases, 12);
        assert!(
            failures.is_empty(),
            "round-trip campaign failed: {}",
            failures[0]
        );
    }
}
