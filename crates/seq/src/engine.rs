//! Sequential ECO via k-frame unrolling and patch fold-back.
//!
//! [`SeqEcoEngine`] rectifies a latch-bearing faulty design against a
//! latch-bearing golden design by (1) unrolling both over `k` frames,
//! (2) running the combinational cost-aware engine on the unrolled
//! instance — every sequential target `t` becomes `k` per-frame targets
//! `t@0..t@{k-1}`, every named net a per-frame weighted base candidate —
//! and (3) *folding* the per-frame patches back into one time-invariant
//! sequential patch: for each target the engine picks the highest frame
//! whose patch support is frame-pure (all bases read from that same
//! frame), strips the `@frame` suffixes, and splices the folded patch
//! into the sequential design.
//!
//! Folding assumes the chosen frame's patch function is time-invariant,
//! which the engine never trusts: the folded design is re-proved against
//! the golden design on a fresh `k`-frame unrolled miter under the run's
//! governor. A failed proof retries lower frames; only a proved fold is
//! returned, so the result is sound for `k`-step bounded equivalence
//! from the reset states. Targets buried in latch-feeding cones may
//! admit no time-invariant per-frame patch (their steady-state support
//! is target-tainted in the unrolling) — those runs end with a typed
//! fold error rather than an unsound patch.

use std::collections::HashMap;

use eco_aig::{Aig, Lit, Var};
use eco_core::{
    check_equivalence_ctl, Budget, EcoEngine, EcoError, EcoInstance, EcoOptions, EcoOutcome,
    EcoResult, VerifyOutcome,
};
use eco_netlist::WeightTable;

use crate::netlist::{SeqError, SeqNetlist};
use crate::unroll::{unroll, unroll_miter};

/// Configuration for a sequential rectification run.
#[derive(Clone, Debug)]
pub struct SeqEcoOptions {
    /// Unroll depth `k` (bounded-equivalence horizon, at least 1).
    pub frames: usize,
    /// Options for the inner combinational engine.
    pub eco: EcoOptions,
}

impl Default for SeqEcoOptions {
    fn default() -> Self {
        SeqEcoOptions {
            frames: 4,
            eco: EcoOptions::default(),
        }
    }
}

/// Error produced by the sequential engine.
#[derive(Debug)]
pub enum SeqEcoError {
    /// A declared target is not a floating input of the faulty design.
    MissingTarget(String),
    /// The inner combinational engine failed.
    Eco(EcoError),
    /// Sequential surgery (unroll / splice) failed.
    Seq(SeqError),
    /// The governed combinational run degraded to a partial result.
    Degraded(String),
    /// No frame of this target's per-frame patches has frame-pure
    /// support, so no time-invariant fold exists at this depth.
    NotFramePure(String),
    /// Every frame-pure fold failed the sequential re-proof.
    FoldFailed {
        /// Fold combinations tried before giving up.
        attempts: usize,
    },
    /// The sequential re-proof exhausted its conflict budget or deadline.
    VerifyUnknown,
}

impl std::fmt::Display for SeqEcoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeqEcoError::MissingTarget(t) => {
                write!(
                    f,
                    "target `{t}` is not a floating input of the faulty design"
                )
            }
            SeqEcoError::Eco(e) => write!(f, "{e}"),
            SeqEcoError::Seq(e) => write!(f, "{e}"),
            SeqEcoError::Degraded(r) => write!(f, "governed run degraded: {r}"),
            SeqEcoError::NotFramePure(t) => write!(
                f,
                "target `{t}` has no frame-pure patch at any frame (support spans frames \
                 or reads reset inputs); try a larger unroll depth"
            ),
            SeqEcoError::FoldFailed { attempts } => write!(
                f,
                "no time-invariant fold verified after {attempts} attempt(s); the per-frame \
                 patches are frame-specialized (target likely feeds latch logic)"
            ),
            SeqEcoError::VerifyUnknown => {
                write!(f, "sequential re-proof ran out of budget (result unknown)")
            }
        }
    }
}

impl std::error::Error for SeqEcoError {}

impl From<EcoError> for SeqEcoError {
    fn from(e: EcoError) -> Self {
        SeqEcoError::Eco(e)
    }
}

impl From<SeqError> for SeqEcoError {
    fn from(e: SeqError) -> Self {
        SeqEcoError::Seq(e)
    }
}

/// A proved sequential rectification.
#[derive(Clone, Debug)]
pub struct SeqEcoResult {
    /// The patched sequential design (targets no longer inputs).
    pub patched: SeqNetlist,
    /// The folded sequential patch: inputs name nets of the faulty
    /// design, outputs name targets.
    pub patch_aig: Aig,
    /// Frame each target's patch was folded from.
    pub fold_frames: Vec<(String, usize)>,
    /// Unroll depth the proof covers.
    pub frames: usize,
    /// Total base cost of the folded patch (sum of input-net weights).
    pub cost: u64,
    /// AND-gate count of the folded patch.
    pub size: usize,
    /// The inner combinational result over the unrolled instance.
    pub comb: EcoResult,
}

/// The sequential rectification engine. See the module docs for the
/// unroll → rectify → fold → re-prove pipeline.
pub struct SeqEcoEngine {
    faulty: SeqNetlist,
    golden: SeqNetlist,
    targets: Vec<String>,
    weights: WeightTable,
    options: SeqEcoOptions,
}

impl SeqEcoEngine {
    /// Builds an engine. `faulty` must expose every target as a floating
    /// input (see [`SeqNetlist::cut_nets`]); `golden` is the reference
    /// design with matching primary inputs and output names.
    ///
    /// # Errors
    ///
    /// [`SeqEcoError::MissingTarget`] if a target is not a faulty input;
    /// [`SeqEcoError::Seq`] ([`SeqError::ZeroFrames`]) if `frames == 0`.
    pub fn new(
        faulty: SeqNetlist,
        golden: SeqNetlist,
        targets: Vec<String>,
        weights: WeightTable,
        options: SeqEcoOptions,
    ) -> Result<Self, SeqEcoError> {
        if options.frames == 0 {
            return Err(SeqError::ZeroFrames.into());
        }
        for t in &targets {
            if faulty.aig.find_input(t).is_none() {
                return Err(SeqEcoError::MissingTarget(t.clone()));
            }
        }
        Ok(SeqEcoEngine {
            faulty,
            golden,
            targets,
            weights,
            options,
        })
    }

    /// Runs the full pipeline under a fresh governor built from the
    /// engine's own budget options.
    ///
    /// # Errors
    ///
    /// See [`SeqEcoEngine::run_governed_with`].
    pub fn run(&self) -> Result<SeqEcoResult, SeqEcoError> {
        self.run_governed_with(&Budget::new(&self.options.eco.budget))
    }

    /// Runs unroll → combinational rectification → fold-back → sequential
    /// re-proof, with every solver enrolled in `budget`.
    ///
    /// # Errors
    ///
    /// [`SeqEcoError::Degraded`] when the governor truncated the inner
    /// run; [`SeqEcoError::NotFramePure`] / [`SeqEcoError::FoldFailed`]
    /// when no time-invariant fold exists or verifies;
    /// [`SeqEcoError::VerifyUnknown`] when the re-proof ran out of
    /// budget; [`SeqEcoError::Eco`] / [`SeqEcoError::Seq`] on inner
    /// failures.
    pub fn run_governed_with(&self, budget: &Budget) -> Result<SeqEcoResult, SeqEcoError> {
        let k = self.options.frames;
        let uf = unroll(&self.faulty, k)?;
        let ug = unroll(&self.golden, k)?;

        // Flatten per-frame nets into `name@frame` candidates. Constant
        // entries (reset-valued frame-0 latch states) are skipped: a
        // constant base folds to a live net and is never time-invariant,
        // and constant patch functions need no base at all.
        let mut faulty_nets: HashMap<String, Lit> = HashMap::new();
        let mut weights = WeightTable::new(self.weights.default_weight);
        for (f, frame) in uf.nets.iter().enumerate() {
            for (name, &lit) in frame {
                if lit.const_value().is_some() {
                    continue;
                }
                let flat = format!("{name}@{f}");
                // Time-invariance bias: a base from frame `f` costs its
                // real weight scaled by the distance from the last frame,
                // so the optimizer prefers patches whose support sits in
                // one late frame — exactly the patches that fold. The
                // reported cost is recomputed with the real weights.
                let bias = (k - f) as u64;
                weights.set(flat.clone(), self.weights.weight(name).saturating_mul(bias));
                faulty_nets.insert(flat, lit);
            }
        }
        let mut unrolled_targets = Vec::with_capacity(self.targets.len() * k);
        for t in &self.targets {
            for f in 0..k {
                unrolled_targets.push(format!("{t}@{f}"));
            }
        }

        let instance = EcoInstance::from_elaborated(
            format!("{}@x{k}", self.faulty.name),
            uf.aig,
            &faulty_nets,
            ug.aig,
            unrolled_targets,
            &weights,
        )?;
        let engine = EcoEngine::new(instance, self.options.eco.clone());
        let comb = match engine.run_governed_with(budget)? {
            EcoOutcome::Complete(r) => r,
            EcoOutcome::Partial(p) => return Err(SeqEcoError::Degraded(p.reason)),
        };

        // Per target, the frames whose patch support is frame-pure,
        // highest first. Attempt `a` folds each target from its a-th
        // candidate (clamped), so retries sweep toward frame 0 together.
        let mut candidates: Vec<(String, Vec<usize>)> = Vec::new();
        let mut max_attempts = 0usize;
        for t in &self.targets {
            let mut pure: Vec<usize> = (0..k)
                .rev()
                .filter(|&f| frame_pure_support(&comb.patch_aig, &format!("{t}@{f}"), f).is_some())
                .collect();
            pure.dedup();
            if pure.is_empty() {
                return Err(SeqEcoError::NotFramePure(t.clone()));
            }
            max_attempts = max_attempts.max(pure.len());
            candidates.push((t.clone(), pure));
        }

        let mut attempts = 0usize;
        for a in 0..max_attempts {
            let chosen: Vec<(String, usize)> = candidates
                .iter()
                .map(|(t, pure)| (t.clone(), pure[a.min(pure.len() - 1)]))
                .collect();
            attempts += 1;
            let folded = fold_patch(&comb.patch_aig, &chosen)?;
            let patched = self.faulty.splice(&folded)?;
            let (mut miter, pairs) = unroll_miter(&patched, &self.golden, k)?;
            let (outcome, _) = check_equivalence_ctl(
                &mut miter,
                &pairs,
                self.options.eco.verify_budget,
                &budget.ctl(),
            );
            match outcome {
                VerifyOutcome::Equivalent => {
                    let cost = (0..folded.num_inputs())
                        .map(|p| self.weights.weight(folded.input_name(p)))
                        .sum();
                    let roots: Vec<Lit> = folded.outputs().iter().map(|o| o.lit).collect();
                    let size = folded.count_cone_ands(&roots);
                    return Ok(SeqEcoResult {
                        patched,
                        patch_aig: folded,
                        fold_frames: chosen,
                        frames: k,
                        cost,
                        size,
                        comb,
                    });
                }
                VerifyOutcome::Counterexample(_) => continue,
                VerifyOutcome::Unknown => return Err(SeqEcoError::VerifyUnknown),
            }
        }
        Err(SeqEcoError::FoldFailed { attempts })
    }
}

/// If every base the patch output `out_name` reads is `base@frame`,
/// returns the support vars; otherwise `None`.
fn frame_pure_support(patch: &Aig, out_name: &str, frame: usize) -> Option<Vec<Var>> {
    let idx = patch.find_output(out_name)?;
    let sup = patch.support(&[patch.output_lit(idx)]);
    let tag = frame.to_string();
    for &v in &sup {
        let name = patch.input_name(patch.input_pos(v)?);
        let (_, f) = name.rsplit_once('@')?;
        if f != tag {
            return None;
        }
    }
    Some(sup)
}

/// Builds the folded sequential patch: each target's chosen per-frame
/// cone is imported with every base input `base@f` renamed to `base`
/// (shared across targets), and outputs renamed `t@f` → `t`.
fn fold_patch(patch: &Aig, chosen: &[(String, usize)]) -> Result<Aig, SeqError> {
    let mut folded = Aig::new();
    let mut in_map: HashMap<Var, Lit> = HashMap::new();
    let mut by_base: HashMap<String, Lit> = HashMap::new();
    let mut roots: Vec<Lit> = Vec::with_capacity(chosen.len());
    for (t, f) in chosen {
        let idx = patch
            .find_output(&format!("{t}@{f}"))
            .ok_or_else(|| SeqError::UnknownNet(format!("{t}@{f}")))?;
        let root = patch.output_lit(idx);
        for v in patch.support(&[root]) {
            let name = patch.input_name(patch.input_pos(v).expect("support var is an input"));
            let base = name.rsplit_once('@').map_or(name, |(b, _)| b).to_owned();
            let lit = *by_base
                .entry(base.clone())
                .or_insert_with(|| folded.add_input(base));
            in_map.insert(v, lit);
        }
        roots.push(root);
    }
    let imported = folded.import(patch, &roots, &in_map)?;
    for ((t, _), &lit) in chosen.iter().zip(&imported) {
        folded.add_output(t.clone(), lit);
    }
    Ok(folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Latch;
    use eco_netlist::LatchInit;

    /// Golden: 2-stage shift register `s0' = d, s1' = s0`, output
    /// `q = s0 & s1` through named net `w`.
    fn golden() -> SeqNetlist {
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let s0 = aig.add_input("s0");
        let s1 = aig.add_input("s1");
        let w = aig.and(s0, s1);
        aig.add_output("q", w);
        let net_lits = HashMap::from([
            ("d".to_string(), d),
            ("s0".to_string(), s0),
            ("s1".to_string(), s1),
            ("w".to_string(), w),
        ]);
        SeqNetlist::new(
            "sr2",
            aig,
            vec![
                Latch {
                    state: s0.var(),
                    next: d,
                    init: LatchInit::Zero,
                },
                Latch {
                    state: s1.var(),
                    next: s0,
                    init: LatchInit::Zero,
                },
            ],
            net_lits,
        )
        .expect("valid")
    }

    #[test]
    fn rectifies_output_cone_fault() {
        let g = golden();
        // Fault model: the AND driving q was cut out as target `w`.
        let faulty = g.cut_nets(&["w".to_string()]).expect("cuttable");
        let engine = SeqEcoEngine::new(
            faulty,
            g.clone(),
            vec!["w".to_string()],
            WeightTable::new(1),
            SeqEcoOptions {
                frames: 3,
                eco: EcoOptions::default(),
            },
        )
        .expect("engine");
        let result = engine.run().expect("rectifies");
        assert_eq!(result.frames, 3);
        assert_eq!(result.fold_frames.len(), 1);
        assert_eq!(result.fold_frames[0].0, "w");
        // The patched design matches the golden design cycle-accurately.
        for bits in 0u32..64 {
            let stim: Vec<Vec<bool>> = (0..6).map(|f| vec![bits >> f & 1 == 1]).collect();
            assert_eq!(
                g.simulate(&stim),
                result.patched.simulate(&stim),
                "{bits:#b}"
            );
        }
        // The folded patch reads live nets, not frame copies.
        for p in 0..result.patch_aig.num_inputs() {
            assert!(!result.patch_aig.input_name(p).contains('@'));
        }
    }

    #[test]
    fn rejects_missing_target() {
        let g = golden();
        assert!(matches!(
            SeqEcoEngine::new(
                g.clone(),
                g,
                vec!["ghost".to_string()],
                WeightTable::new(1),
                SeqEcoOptions::default(),
            ),
            Err(SeqEcoError::MissingTarget(_))
        ));
    }

    #[test]
    fn rejects_zero_frames() {
        let g = golden();
        assert!(matches!(
            SeqEcoEngine::new(
                g.clone(),
                g,
                vec![],
                WeightTable::new(1),
                SeqEcoOptions {
                    frames: 0,
                    eco: EcoOptions::default(),
                },
            ),
            Err(SeqEcoError::Seq(SeqError::ZeroFrames))
        ));
    }
}
