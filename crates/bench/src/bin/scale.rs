//! `scale`: the million-gate scale harness behind `BENCH_scale.json`.
//!
//! For each selected preset (`100k`, `500k`, `1m`) this builds the two
//! scale circuits of `eco-workgen --scale` directly in memory, times
//! construction and wide-strip random simulation, and measures the SoA
//! core's memory against an in-process replica of the seed layout
//! (`Vec<Node>` plus a SipHash `HashMap<(Lit, Lit), Var>` strash) built
//! from the same circuit. Peak RSS is sampled per row.
//!
//! ```text
//! cargo run --release -p eco-bench --bin scale -- --json crates/bench/BENCH_scale.json
//! scale --presets 100k --json out.json --baseline BENCH_scale.json
//! ```
//!
//! `--baseline <path>` compares each row's simulation throughput against
//! a previous dump and exits 3 when any row regresses by more than 20%.
//! `--timeout-s N` is a soft governor deadline: presets still pending
//! when it fires are skipped and the partial rows are written normally,
//! mirroring the engine's graceful-degradation policy. Exit codes:
//! 0 — ok, 1 — usage/IO error, 3 — throughput regression.

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use eco_aig::{Aig, Lit, Node, Var};
use eco_bench::peak_rss_bytes;
use eco_core::JsonObj;
use eco_workgen::{deep_datapath_aig, wide_random_aig, ScalePreset, SCALE_PRESETS};

/// Simulation width in 64-bit words (512 patterns), matching the FRAIG
/// sweep's default stimulus order of magnitude while keeping the 1m-gate
/// arena around 64 MiB.
const SIM_WORDS: usize = 8;
const SIM_SEED: u64 = 0xbe9c;
/// Timed simulation passes per row; the fastest is reported.
const SIM_PASSES: usize = 3;

const USAGE: &str =
    "usage: scale [--presets 100k,500k,1m] [--json <path>] [--baseline <path>] [--timeout-s N]";

struct Row {
    name: String,
    inputs: usize,
    ands: usize,
    build_s: f64,
    sim_s: f64,
    gates_per_sec: f64,
    soa_bytes: usize,
    seed_layout_bytes: usize,
    peak_rss: Option<u64>,
    wall_s: f64,
}

/// Rebuilds the pre-SoA core layout for the same circuit — one `Node`
/// enum per row plus the SipHash strash map — and returns its heap
/// footprint from the containers' own capacities. Measuring a live
/// replica keeps the comparison honest as allocator growth policies
/// change.
fn seed_layout_bytes(aig: &Aig) -> usize {
    let mut nodes: Vec<Node> = Vec::new();
    let mut strash: HashMap<(Lit, Lit), Var> = HashMap::new();
    for (v, node) in aig.iter_nodes() {
        if let Node::And { fan0, fan1 } = node {
            strash.insert((fan0, fan1), v);
        }
        nodes.push(node);
    }
    // SipHash table cost per advertised slot: the (key, value) payload
    // plus hashbrown's one control byte.
    let entry = std::mem::size_of::<((Lit, Lit), Var)>() + 1;
    nodes.capacity() * std::mem::size_of::<Node>() + strash.capacity() * entry
}

fn run_row(name: &str, aig_of: impl FnOnce() -> Aig) -> Row {
    let t0 = Instant::now();
    let aig = aig_of();
    let build_s = t0.elapsed().as_secs_f64();

    let mut sim_s = f64::INFINITY;
    for _ in 0..SIM_PASSES {
        let t = Instant::now();
        let sim = aig.simulate_random(SIM_WORDS, SIM_SEED);
        std::hint::black_box(sim.node_words(Var::CONST));
        sim_s = sim_s.min(t.elapsed().as_secs_f64());
    }
    let gates_per_sec = aig.num_ands() as f64 * SIM_WORDS as f64 / sim_s;

    let row = Row {
        name: name.to_string(),
        inputs: aig.num_inputs(),
        ands: aig.num_ands(),
        build_s,
        sim_s,
        gates_per_sec,
        soa_bytes: aig.core_memory_bytes(),
        seed_layout_bytes: seed_layout_bytes(&aig),
        peak_rss: peak_rss_bytes(),
        wall_s: t0.elapsed().as_secs_f64(),
    };
    eprintln!(
        "{:<22} {:>9} ANDs  build {:>7.3}s  sim {:>8.2} Mgates/s  \
         soa {:>5.1} B/node  seed-layout {:>5.1} B/node",
        row.name,
        row.ands,
        row.build_s,
        row.gates_per_sec / 1e6,
        row.soa_bytes as f64 / row.ands.max(1) as f64,
        row.seed_layout_bytes as f64 / row.ands.max(1) as f64,
    );
    row
}

fn rows_json(rows: &[Row]) -> String {
    let rendered: Vec<String> = rows
        .iter()
        .map(|r| {
            let ands = r.ands.max(1) as f64;
            let obj = JsonObj::new()
                .str("name", &r.name)
                .u64("inputs", r.inputs as u64)
                .u64("ands", r.ands as u64)
                .u64("sim_words", SIM_WORDS as u64)
                .f64("build_s", r.build_s)
                .f64("sim_s", r.sim_s)
                .f64("gates_per_sec", r.gates_per_sec)
                .u64("soa_bytes", r.soa_bytes as u64)
                .f64("soa_bytes_per_node", r.soa_bytes as f64 / ands)
                .u64("seed_layout_bytes", r.seed_layout_bytes as u64)
                .f64(
                    "seed_layout_bytes_per_node",
                    r.seed_layout_bytes as f64 / ands,
                )
                .f64(
                    "memory_reduction_pct",
                    (1.0 - r.soa_bytes as f64 / r.seed_layout_bytes.max(1) as f64) * 100.0,
                );
            let obj = match r.peak_rss {
                Some(b) => obj.u64("peak_rss_bytes", b),
                None => obj.raw("peak_rss_bytes", "null"),
            };
            obj.f64("wall_s", r.wall_s).build()
        })
        .collect();
    format!("{{\"rows\": [\n  {}\n]}}\n", rendered.join(",\n  "))
}

/// Pulls `"gates_per_sec"` for `name` out of a previous dump. The
/// workspace emits JSON without external deps, so it scans the text the
/// same way instead of carrying a parser.
fn baseline_gates_per_sec(baseline: &str, name: &str) -> Option<f64> {
    let at = baseline.find(&format!("\"name\": \"{name}\""))?;
    let rest = &baseline[at..];
    let key = "\"gates_per_sec\": ";
    let v = &rest[rest.find(key)? + key.len()..];
    let end = v.find([',', '}', '\n'])?;
    v[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let mut presets: Vec<&ScalePreset> = SCALE_PRESETS.iter().collect();
    let mut json_path = None;
    let mut baseline_path = None;
    let mut timeout = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        let r = match a.as_str() {
            "--presets" => value("--presets").and_then(|v| {
                v.split(',')
                    .map(|n| {
                        SCALE_PRESETS
                            .iter()
                            .find(|p| p.name == n)
                            .ok_or_else(|| format!("unknown preset `{n}`"))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(|ps| presets = ps)
            }),
            "--json" => value("--json").map(|v| json_path = Some(v)),
            "--baseline" => value("--baseline").map(|v| baseline_path = Some(v)),
            "--timeout-s" => value("--timeout-s").and_then(|v| {
                v.parse::<u64>()
                    .map(|s| timeout = Some(Duration::from_secs(s)))
                    .map_err(|_| format!("--timeout-s expects seconds, got `{v}`"))
            }),
            "-h" | "--help" => Err(USAGE.to_string()),
            other => Err(format!("unknown argument `{other}`\n{USAGE}")),
        };
        if let Err(msg) = r {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    }

    let start = Instant::now();
    let expired = |start: Instant| timeout.is_some_and(|t| start.elapsed() >= t);
    let mut rows = Vec::new();
    for p in presets {
        if expired(start) {
            eprintln!("deadline fired; skipping preset {}", p.name);
            continue;
        }
        rows.push(run_row(&format!("scale/datapath_{}", p.name), || {
            deep_datapath_aig(p.inputs, p.ands, p.seed)
        }));
        if expired(start) {
            eprintln!("deadline fired; skipping randdag_{}", p.name);
            continue;
        }
        rows.push(run_row(&format!("scale/randdag_{}", p.name), || {
            wide_random_aig(p.inputs, p.ands, p.seed)
        }));
    }

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, rows_json(&rows)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("wrote {path}");
    }

    if let Some(path) = &baseline_path {
        let baseline = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("failed to read baseline {path}: {e}");
                return ExitCode::from(1);
            }
        };
        let mut regressed = false;
        for r in &rows {
            let Some(base) = baseline_gates_per_sec(&baseline, &r.name) else {
                eprintln!("baseline has no row `{}`; skipping compare", r.name);
                continue;
            };
            let ratio = r.gates_per_sec / base;
            eprintln!(
                "{:<22} {:>8.2} Mgates/s vs baseline {:>8.2} ({:+.1}%)",
                r.name,
                r.gates_per_sec / 1e6,
                base / 1e6,
                (ratio - 1.0) * 100.0
            );
            if ratio < 0.8 {
                eprintln!("regression: {} lost more than 20% throughput", r.name);
                regressed = true;
            }
        }
        if regressed {
            return ExitCode::from(3);
        }
    }
    ExitCode::SUCCESS
}
