//! `eco-fuzz`: differential fuzzing of the ECO pipeline.
//!
//! ```text
//! eco-fuzz --iters 500 --seed 1 --shrink            # fuzz campaign
//! eco-fuzz --replay tests/corpus                    # replay a corpus
//! eco-fuzz --iters 1000 --corpus tests/corpus       # save shrunk failures
//! ```
//!
//! Each iteration generates a seeded random golden circuit with
//! contest-style faults, runs the full patch-generation pipeline, and
//! checks the result with an independent oracle (emitted-Verilog
//! round trip, fresh SAT miter, random-simulation cross-check). With
//! `--shrink`, failures are greedily reduced before reporting; with
//! `--corpus <dir>`, each (shrunk) failure is written there as a
//! `.case` file for the regression replay test.
//!
//! `--budget-campaign` instead drives every case through the *governed*
//! pipeline under a seeded starvation budget (tiny per-cluster conflict
//! allowances, occasional zero deadlines): each case must either
//! complete and pass the full oracle or degrade to a well-formed
//! partial result — never panic, hang, or emit a malformed netlist.
//!
//! `--formats N` runs the format round-trip campaign instead: N seeded
//! designs (combinational, shift-register, and sequential-DAG families)
//! are pushed through every legal format and every ordered format pair,
//! with per-format byte-fixpoint checks and a k-frame unrolled SAT
//! miter proving each survivor equivalent to the original. Failures
//! shrink by generator parameters and land in `--corpus <dir>` as
//! `.rtcase` files; `--replay` replays both `.case` and `.rtcase`
//! files.
//!
//! `--stats=json` renders the campaign summary as one JSON object on
//! stdout (same `JsonObj` emitter as `eco-patch --stats=json` and
//! `eco-batch --stats=json`, so field naming stays consistent).
//!
//! Exit codes: 0 — clean; 1 — usage or I/O error; 3 — failures found.

use std::process::ExitCode;

use eco_core::JsonObj;
use eco_workgen::fuzz::{
    gen_case, run_budget_campaign, run_campaign, run_case, CaseOutcome, FuzzCase, FuzzConfig,
};
use eco_workgen::roundtrip::{run_rt_campaign, run_rt_case, RtCase, RtConfig, RtOutcome};

const USAGE: &str = "usage: eco-fuzz [--iters <n>] [--seed <s>] [--shrink] \
                     [--corpus <dir>] [--replay <file-or-dir>] [--case <seed>] \
                     [--budget-campaign] [--formats <n>] [--stats=json]";

fn replay(path: &str, cfg: &FuzzConfig) -> Result<u64, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("{path}: {e}"))?;
    let mut files: Vec<String> = if meta.is_dir() {
        let mut v: Vec<String> = std::fs::read_dir(path)
            .map_err(|e| format!("{path}: {e}"))?
            .filter_map(|e| e.ok())
            .map(|e| e.path().to_string_lossy().into_owned())
            .filter(|p| p.ends_with(".case") || p.ends_with(".rtcase"))
            .collect();
        v.sort();
        v
    } else {
        vec![path.to_owned()]
    };
    if files.is_empty() {
        eprintln!("{path}: no .case or .rtcase files");
    }
    let rt_cfg = RtConfig::default();
    let mut failures = 0;
    for f in files.drain(..) {
        let text = std::fs::read_to_string(&f).map_err(|e| format!("{f}: {e}"))?;
        if f.ends_with(".rtcase") {
            let case = RtCase::from_text(&text).map_err(|e| format!("{f}: {e}"))?;
            match run_rt_case(&case, &rt_cfg) {
                RtOutcome::Pass => println!("{f}: pass"),
                RtOutcome::Skip(why) => println!("{f}: skip ({why})"),
                RtOutcome::Fail { hop, detail } => {
                    failures += 1;
                    println!("{f}: FAIL at {hop} — {detail}");
                }
            }
            continue;
        }
        let case = FuzzCase::from_text(&text).map_err(|e| format!("{f}: {e}"))?;
        match run_case(&case, cfg) {
            CaseOutcome::Pass => println!("{f}: pass"),
            CaseOutcome::Skip(why) => println!("{f}: skip ({why})"),
            CaseOutcome::Fail(fail) => {
                failures += 1;
                println!("{f}: FAIL at {} — {}", fail.stage, fail.detail);
            }
        }
    }
    Ok(failures)
}

fn run_one(seed: u64, cfg: &FuzzConfig) -> Result<u64, String> {
    let case = gen_case(seed, cfg).ok_or_else(|| format!("seed {seed} yields no case"))?;
    print!("{}", case.to_text());
    match run_case(&case, cfg) {
        CaseOutcome::Pass => {
            eprintln!("seed {seed}: pass");
            Ok(0)
        }
        CaseOutcome::Skip(why) => {
            eprintln!("seed {seed}: skip ({why})");
            Ok(0)
        }
        CaseOutcome::Fail(f) => {
            eprintln!("seed {seed}: FAIL at {} — {}", f.stage, f.detail);
            Ok(1)
        }
    }
}

fn main() -> ExitCode {
    let mut iters: u64 = 500;
    let mut seed: u64 = 1;
    let mut shrink = false;
    let mut corpus: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut one_case: Option<u64> = None;
    let mut budget_campaign = false;
    let mut formats_iters: Option<u64> = None;
    let mut stats_json = false;
    let mut args = std::env::args().skip(1);
    let mut bad = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--budget-campaign" => budget_campaign = true,
            "--formats" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => formats_iters = Some(v),
                None => bad = true,
            },
            "--stats=json" => stats_json = true,
            "--iters" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => iters = v,
                None => bad = true,
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => bad = true,
            },
            "--shrink" => shrink = true,
            "--corpus" => corpus = args.next(),
            "--replay" => replay_path = args.next(),
            "--case" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => one_case = Some(v),
                None => bad = true,
            },
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    if bad {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    }

    let cfg = FuzzConfig::default();

    if let Some(path) = replay_path {
        return match replay(&path, &cfg) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::from(3),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    if let Some(s) = one_case {
        return match run_one(s, &cfg) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::from(3),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }

    if let Some(iters) = formats_iters {
        let rt_cfg = RtConfig::default();
        let (stats, failures) = run_rt_campaign(iters, seed, &rt_cfg, shrink, |done, s| {
            if done % 100 == 0 {
                eprintln!(
                    "{done}/{iters}: {} passed, {} skipped, {} failed",
                    s.passes, s.skips, s.failures
                );
            }
        });
        if stats_json {
            println!(
                "{}",
                JsonObj::new()
                    .u64("cases", stats.cases)
                    .u64("passes", stats.passes)
                    .u64("skips", stats.skips)
                    .u64("failures", stats.failures)
                    .u64("shrink_steps", stats.shrink_steps)
                    .u64("shrink_accepted", stats.shrink_accepted)
                    .build()
            );
        } else {
            println!(
                "cases {}  passes {}  skips {}  failures {}  shrink-steps {}  shrink-accepted {}",
                stats.cases,
                stats.passes,
                stats.skips,
                stats.failures,
                stats.shrink_steps,
                stats.shrink_accepted
            );
        }
        for (i, f) in failures.iter().enumerate() {
            eprintln!("failure {i}: {f}");
            if let Some(dir) = &corpus {
                let path = format!("{dir}/rtfail_{:016x}.rtcase", f.case.seed);
                if let Err(e) = std::fs::create_dir_all(dir)
                    .and_then(|()| std::fs::write(&path, f.case.to_text()))
                {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(1);
                }
                eprintln!("  wrote {path}");
            }
        }
        return if failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(3)
        };
    }

    if budget_campaign {
        let (stats, failures) = run_budget_campaign(iters, seed, &cfg, |done, s| {
            if done % 100 == 0 {
                eprintln!(
                    "{done}/{iters}: {} completed, {} partial, {} skipped, {} failed",
                    s.completes, s.partials, s.skips, s.failures
                );
            }
        });
        if stats_json {
            println!(
                "{}",
                JsonObj::new()
                    .u64("cases", stats.cases)
                    .u64("completes", stats.completes)
                    .u64("partials", stats.partials)
                    .u64("skips", stats.skips)
                    .u64("failures", stats.failures)
                    .build()
            );
        } else {
            println!(
                "cases {}  completes {}  partials {}  skips {}  failures {}",
                stats.cases, stats.completes, stats.partials, stats.skips, stats.failures
            );
        }
        for (i, f) in failures.iter().enumerate() {
            eprintln!(
                "failure {i}: seed {:x} at {} — {}",
                f.case.seed, f.failure.stage, f.failure.detail
            );
        }
        return if failures.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(3)
        };
    }

    let (stats, failures) = run_campaign(iters, seed, &cfg, shrink, |done, s| {
        if done % 100 == 0 {
            eprintln!(
                "{done}/{iters}: {} passed, {} skipped, {} failed",
                s.passes, s.skips, s.failures
            );
        }
    });
    if stats_json {
        println!(
            "{}",
            JsonObj::new()
                .u64("cases", stats.cases)
                .u64("passes", stats.passes)
                .u64("skips", stats.skips)
                .u64("failures", stats.failures)
                .u64("shrink_steps", stats.shrink_steps)
                .u64("shrink_accepted", stats.shrink_accepted)
                .build()
        );
    } else {
        println!(
            "cases {}  passes {}  skips {}  failures {}  shrink-steps {}  shrink-accepted {}",
            stats.cases,
            stats.passes,
            stats.skips,
            stats.failures,
            stats.shrink_steps,
            stats.shrink_accepted
        );
    }
    for (i, f) in failures.iter().enumerate() {
        eprintln!(
            "failure {i}: seed {:x} at {} — {} ({} gates golden)",
            f.case.seed,
            f.failure.stage,
            f.failure.detail,
            f.case.golden.num_gates()
        );
        if let Some(dir) = &corpus {
            let path = format!("{dir}/fail_{:016x}.case", f.case.seed);
            if let Err(e) =
                std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, f.case.to_text()))
            {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(1);
            }
            eprintln!("  wrote {path}");
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(3)
    }
}
