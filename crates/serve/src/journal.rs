//! The daemon's request journal: crash-safe write-ahead logging of
//! admitted run requests and their responses, powering `--resume`.
//!
//! Every admitted `run` request is appended to `<dir>/requests.wal`
//! *before* it is pushed to the worker queue, and its response line is
//! appended *before* it is written to the client — so any response a
//! client ever received is in the journal, and any journaled admit
//! without a matching `done` is a job the daemon died holding. On
//! restart, [`load_request_journal`] rebuilds that state and the server
//! replays completed responses verbatim and re-executes the rest in
//! admit order (see `Server::resume_from_journal`), making the union of
//! pre-crash and recovered responses byte-identical to an uninterrupted
//! run.
//!
//! The journal uses the workspace-wide checksummed record log
//! ([`eco_core::LogWriter`]), so a SIGKILL mid-append leaves at worst a
//! torn tail the loader discards. Requests are keyed by a fingerprint of
//! the raw request line ([`request_fingerprint`]) — identical lines
//! dedup, anything else (different id, different job) is distinct work.
//!
//! Journal IO failures degrade durability, never availability: appends
//! that fail are counted ([`RequestJournal::append_errors`]) and the
//! daemon keeps serving.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use eco_aig::FpHasher;
use eco_core::{read_log, LogStats, LogWriter};

/// Magic prefix of `requests.wal` files.
pub const REQUEST_JOURNAL_MAGIC: [u8; 8] = *b"ECORQJL1";

const REC_ADMIT: u8 = 1;
const REC_DONE: u8 = 2;
const REC_REFUSED: u8 = 3;
const REC_ATTEMPT: u8 = 4;

/// Fingerprint of one request line (trimmed): the journal's dedup key.
/// The line includes the client-chosen `id`, so two submissions of the
/// same job under different ids are distinct journal entries — each
/// client gets its answer.
pub fn request_fingerprint(line: &str) -> u128 {
    let mut h = FpHasher::new();
    h.word(0x5e59_4a1d); // domain tag: serve request-journal fingerprints
    h.str(line.trim());
    h.finish().0
}

/// Append handle on a serve state directory's request WAL.
#[derive(Debug)]
pub struct RequestJournal {
    log: Mutex<LogWriter>,
    path: PathBuf,
    appended: AtomicU64,
    append_errors: AtomicU64,
}

impl RequestJournal {
    /// Opens (creating if needed) `<dir>/requests.wal` for appending.
    pub fn open(dir: &Path) -> io::Result<RequestJournal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("requests.wal");
        let log = LogWriter::open_append(&path, &REQUEST_JOURNAL_MAGIC)?;
        Ok(RequestJournal {
            log: Mutex::new(log),
            path,
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
        })
    }

    /// Journals a run request (its raw line) as admitted to the queue.
    pub fn admit(&self, fp: u128, line: &str) {
        self.append(REC_ADMIT, fp, line.trim().as_bytes());
    }

    /// Journals a request's response line — called *before* the response
    /// is written to the client, so every delivered response is durable.
    pub fn done(&self, fp: u128, response: &str) {
        self.append(REC_DONE, fp, response.as_bytes());
    }

    /// Journals that an admitted request was refused (shed or
    /// quarantined): resume must not re-execute it.
    pub fn refused(&self, fp: u128) {
        self.append(REC_REFUSED, fp, &[]);
    }

    /// Journals a resume re-execution attempt, *before* it runs; the
    /// attempt count drives per-job quarantine.
    pub fn attempt(&self, fp: u128) {
        self.append(REC_ATTEMPT, fp, &[]);
    }

    /// Truncates the journal back to an empty log — the checkpoint after
    /// a graceful drain, when every admitted job's response has been
    /// written. Failure leaves the old journal in place (a later resume
    /// merely replays already-answered work) and is counted.
    pub fn reset(&self) {
        match LogWriter::create(&self.path, &REQUEST_JOURNAL_MAGIC) {
            Ok(log) => *self.lock_log() = log,
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Appends that failed (journaling degraded, serving continued).
    pub fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }

    fn append(&self, tag: u8, fp: u128, body: &[u8]) {
        let mut payload = Vec::with_capacity(17 + body.len());
        payload.push(tag);
        payload.extend_from_slice(&fp.to_le_bytes());
        payload.extend_from_slice(body);
        match self.lock_log().append(&payload) {
            Ok(()) => {
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn lock_log(&self) -> MutexGuard<'_, LogWriter> {
        // A panic mid-append leaves at most a torn tail, which the
        // loader discards; the writer handle stays valid.
        self.log.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// What a request-journal load recovered.
#[derive(Debug, Default)]
pub struct RequestJournalState {
    /// Admitted request lines in first-admit order, deduped by
    /// fingerprint — the resume replay order.
    pub admits: Vec<(u128, String)>,
    /// Response lines by fingerprint (replayed verbatim on resume).
    pub done: HashMap<u128, String>,
    /// Fingerprints refused (shed or quarantined): not resumed.
    pub refused: HashSet<u128>,
    /// Prior resume attempts by fingerprint (drives quarantine).
    pub attempts: HashMap<u128, u32>,
    /// Raw log framing stats (torn tails, discarded bytes).
    pub log: LogStats,
    /// Structurally invalid payloads skipped.
    pub bad_records: u64,
}

impl RequestJournalState {
    /// Admitted requests with neither a response nor a refusal — the
    /// jobs a crashed daemon died holding.
    pub fn unfinished(&self) -> usize {
        self.admits
            .iter()
            .filter(|(fp, _)| !self.done.contains_key(fp) && !self.refused.contains(fp))
            .count()
    }
}

/// Loads `<dir>/requests.wal`. A missing journal is an empty state; torn
/// or corrupt frames and undecodable payloads are skipped and counted.
pub fn load_request_journal(dir: &Path) -> io::Result<RequestJournalState> {
    let (records, log) = read_log(&dir.join("requests.wal"), &REQUEST_JOURNAL_MAGIC)?;
    let mut state = RequestJournalState {
        log,
        ..Default::default()
    };
    let mut seen_admits: HashSet<u128> = HashSet::new();
    for payload in records {
        if payload.len() < 17 {
            state.bad_records += 1;
            continue;
        }
        let fp = u128::from_le_bytes(payload[1..17].try_into().expect("17-byte prefix checked"));
        let body = || String::from_utf8(payload[17..].to_vec()).ok();
        match payload[0] {
            REC_ADMIT => match body() {
                Some(line) if seen_admits.insert(fp) => state.admits.push((fp, line)),
                Some(_) => {} // duplicate resubmission of the same line
                None => state.bad_records += 1,
            },
            REC_DONE => match body() {
                Some(line) => {
                    state.done.insert(fp, line);
                }
                None => state.bad_records += 1,
            },
            REC_REFUSED => {
                state.refused.insert(fp);
            }
            REC_ATTEMPT => *state.attempts.entry(fp).or_insert(0) += 1,
            _ => state.bad_records += 1,
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eco_serve_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_round_trips_all_record_kinds() {
        let dir = tmpdir("roundtrip");
        let journal = RequestJournal::open(&dir).expect("open");
        let a = request_fingerprint("{\"op\": \"run\", \"id\": 1}");
        let b = request_fingerprint("{\"op\": \"run\", \"id\": 2}");
        let c = request_fingerprint("{\"op\": \"run\", \"id\": 3}");
        journal.admit(a, "{\"op\": \"run\", \"id\": 1}");
        journal.done(a, "{\"id\": 1, \"ok\": true}");
        journal.admit(b, "{\"op\": \"run\", \"id\": 2}");
        journal.refused(b);
        journal.admit(c, "{\"op\": \"run\", \"id\": 3}"); // the crash victim
        journal.attempt(c);
        journal.admit(c, "{\"op\": \"run\", \"id\": 3}"); // duplicate admit
        assert_eq!(journal.appended(), 7);
        assert_eq!(journal.append_errors(), 0);
        drop(journal);
        let state = load_request_journal(&dir).expect("load");
        assert_eq!(state.admits.len(), 3, "admits deduped by fingerprint");
        assert_eq!(state.admits[0].0, a, "first-admit order");
        assert_eq!(state.admits[2].0, c);
        assert_eq!(
            state.done.get(&a).map(String::as_str),
            Some("{\"id\": 1, \"ok\": true}")
        );
        assert!(state.refused.contains(&b));
        assert_eq!(state.attempts.get(&c), Some(&1));
        assert_eq!(state.unfinished(), 1, "only c is unfinished");
        assert_eq!(state.bad_records, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty() {
        let dir = tmpdir("missing");
        let state = load_request_journal(&dir).expect("load");
        assert!(state.admits.is_empty());
        assert_eq!(state.unfinished(), 0);
    }

    #[test]
    fn reset_truncates_to_an_empty_log() {
        let dir = tmpdir("reset");
        let journal = RequestJournal::open(&dir).expect("open");
        let fp = request_fingerprint("line");
        journal.admit(fp, "line");
        journal.reset();
        journal.admit(fp, "line2"); // post-reset appends still land
        drop(journal);
        let state = load_request_journal(&dir).expect("load");
        assert_eq!(state.admits.len(), 1);
        assert_eq!(state.admits[0].1, "line2");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_distinguish_ids_and_trim_whitespace() {
        let a = request_fingerprint("{\"op\": \"run\", \"id\": 1}");
        let b = request_fingerprint("{\"op\": \"run\", \"id\": 2}");
        assert_ne!(
            a, b,
            "the id is part of the key: every client gets an answer"
        );
        assert_eq!(a, request_fingerprint("  {\"op\": \"run\", \"id\": 1}\n"));
    }
}
