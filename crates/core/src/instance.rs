//! ECO problem instances.

use std::collections::{HashMap, HashSet};

use eco_aig::{Aig, Lit, Var};
use eco_netlist::{elaborate, ElaborateError, Netlist, WeightTable};

use crate::EcoError;

/// A signal of the faulty circuit that patches may use as an input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BaseCandidate {
    /// Net name (as in the weight file).
    pub name: String,
    /// Literal in the faulty AIG driving this net.
    pub lit: Lit,
    /// Cost of tapping this signal.
    pub weight: u64,
}

/// A multi-target ECO problem: faulty circuit `F(X, T)` with floating
/// target pseudo-inputs `T`, golden circuit `G(X)`, and weighted base
/// candidates (CAD Contest 2017 formulation, §2.2 of the paper).
#[derive(Clone, Debug)]
pub struct EcoInstance {
    /// Instance name (for reports).
    pub name: String,
    /// Faulty circuit; its inputs are `X ∪ T`.
    pub faulty: Aig,
    /// Golden circuit over `X`.
    pub golden: Aig,
    /// Target pseudo-input names, in rectification order `t_1..t_α`.
    pub targets: Vec<String>,
    /// Signals available as patch inputs, with weights.
    pub candidates: Vec<BaseCandidate>,
}

impl EcoInstance {
    /// Builds and validates an instance from pre-elaborated AIGs.
    ///
    /// Candidates must already be restricted to signals whose cones do not
    /// depend on any target (this is checked).
    ///
    /// # Errors
    ///
    /// Returns [`EcoError`] if a target is not a faulty input, the input or
    /// output name sets are inconsistent, or a candidate depends on a
    /// target.
    pub fn new(
        name: impl Into<String>,
        faulty: Aig,
        golden: Aig,
        targets: Vec<String>,
        candidates: Vec<BaseCandidate>,
    ) -> Result<Self, EcoError> {
        let target_set: HashSet<&str> = targets.iter().map(String::as_str).collect();
        let mut target_vars: HashSet<Var> = HashSet::new();
        for t in &targets {
            let v = faulty
                .find_input(t)
                .ok_or_else(|| EcoError::UnknownTarget(t.clone()))?;
            target_vars.insert(v);
        }
        // Golden inputs must all exist among the faulty X inputs.
        for pos in 0..golden.num_inputs() {
            let n = golden.input_name(pos);
            if target_set.contains(n) || faulty.find_input(n).is_none() {
                return Err(EcoError::MissingInput(n.to_string()));
            }
        }
        // Output name sets must match.
        for out in faulty.outputs() {
            if golden.find_output(&out.name).is_none() {
                return Err(EcoError::OutputMismatch(out.name.clone()));
            }
        }
        for out in golden.outputs() {
            if faulty.find_output(&out.name).is_none() {
                return Err(EcoError::OutputMismatch(out.name.clone()));
            }
        }
        // Candidates must not depend on targets (patching must stay acyclic).
        for c in &candidates {
            let sup = faulty.support(&[c.lit]);
            if sup.iter().any(|v| target_vars.contains(v)) {
                return Err(EcoError::UnknownTarget(format!(
                    "candidate `{}` depends on a target signal",
                    c.name
                )));
            }
        }
        Ok(EcoInstance {
            name: name.into(),
            faulty,
            golden,
            targets,
            candidates,
        })
    }

    /// Builds an instance from contest-format netlists and a weight table.
    ///
    /// Every named net of the faulty netlist whose logic does not depend on
    /// a target becomes a base candidate, weighted by `weights`.
    ///
    /// # Errors
    ///
    /// Propagates elaboration failures (as [`EcoError::Unrectifiable`] is
    /// *not* used here; malformed circuits yield the corresponding
    /// validation error) and the checks of [`EcoInstance::new`].
    pub fn from_netlists(
        name: impl Into<String>,
        faulty_nl: &Netlist,
        golden_nl: &Netlist,
        targets: Vec<String>,
        weights: &WeightTable,
    ) -> Result<Self, EcoError> {
        let conv = |e: ElaborateError| EcoError::OutputMismatch(e.to_string());
        let faulty = elaborate(faulty_nl).map_err(conv)?;
        let golden = elaborate(golden_nl).map_err(conv)?;
        // Structural taint: nets in the *netlist-level* transitive fanout
        // of a target must not become candidates even when constant
        // folding removes the dependency from the AIG (e.g. `and(t, 0)`),
        // because tapping such a net would wire a physical combinational
        // cycle once the patch drives the target.
        let tainted = structurally_tainted(faulty_nl, &targets);
        let filtered: HashMap<String, Lit> = faulty
            .net_lits
            .iter()
            .filter(|(n, _)| !tainted.contains(n.as_str()))
            .map(|(n, &l)| (n.clone(), l))
            .collect();
        EcoInstance::from_elaborated(name, faulty.aig, &filtered, golden.aig, targets, weights)
    }

    /// Builds an instance from already-elaborated AIGs plus the faulty
    /// circuit's net-name → literal map (as produced by
    /// [`eco_netlist::elaborate`] or [`eco_netlist::parse_blif`]).
    ///
    /// Every named, target-independent net becomes a weighted base
    /// candidate. Independence is judged on the AIG — if constant folding
    /// erased a structural dependency on a target, the corresponding net
    /// will still be offered as a candidate even though tapping it wires a
    /// (semantically false but physically real) combinational loop; strip
    /// such nets from `faulty_nets` first when the netlist structure is
    /// available, as [`EcoInstance::from_netlists`] does.
    ///
    /// # Errors
    ///
    /// Same checks as [`EcoInstance::new`].
    pub fn from_elaborated(
        name: impl Into<String>,
        faulty: Aig,
        faulty_nets: &HashMap<String, Lit>,
        golden: Aig,
        targets: Vec<String>,
        weights: &WeightTable,
    ) -> Result<Self, EcoError> {
        let target_set: HashSet<&str> = targets.iter().map(String::as_str).collect();
        let mut target_vars: HashSet<Var> = HashSet::new();
        for t in &targets {
            if let Some(v) = faulty.find_input(t) {
                target_vars.insert(v);
            }
        }
        let mut candidates: Vec<BaseCandidate> = Vec::new();
        let mut names: Vec<&String> = faulty_nets.keys().collect();
        names.sort();
        for n in names {
            if target_set.contains(n.as_str()) {
                continue;
            }
            let lit = faulty_nets[n];
            let sup = faulty.support(&[lit]);
            if sup.iter().any(|v| target_vars.contains(v)) {
                continue;
            }
            candidates.push(BaseCandidate {
                name: n.clone(),
                lit,
                weight: weights.weight(n),
            });
        }
        EcoInstance::new(name, faulty, golden, targets, candidates)
    }

    /// Number of targets `α`.
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }

    /// The primary-input names `X` (faulty inputs that are not targets), in
    /// faulty declaration order.
    pub fn x_names(&self) -> Vec<String> {
        let target_set: HashSet<&str> = self.targets.iter().map(String::as_str).collect();
        (0..self.faulty.num_inputs())
            .map(|p| self.faulty.input_name(p).to_owned())
            .filter(|n| !target_set.contains(n.as_str()))
            .collect()
    }
}

/// Net names reachable from `targets` through netlist gates (transitive
/// structural fanout, targets included).
fn structurally_tainted(netlist: &Netlist, targets: &[String]) -> HashSet<String> {
    let mut tainted: HashSet<String> = targets.iter().cloned().collect();
    loop {
        let before = tainted.len();
        for g in &netlist.gates {
            if tainted.contains(&g.output) {
                continue;
            }
            let reads_tainted = g
                .inputs
                .iter()
                .filter_map(|r| r.name())
                .any(|n| tainted.contains(n));
            if reads_tainted {
                tainted.insert(g.output.clone());
            }
        }
        if tainted.len() == before {
            break;
        }
    }
    tainted
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::parse_verilog;

    fn simple_pair() -> (Netlist, Netlist) {
        // Golden: y = (a & b) ^ c. Faulty: the AND was cut out as target t.
        let faulty = parse_verilog(
            "module f (a, b, c, t, y); input a, b, c, t; output y; \
             xor g1 (y, t, c); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y); input a, b, c; output y; \
             wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
        )
        .expect("golden");
        (faulty, golden)
    }

    #[test]
    fn from_netlists_builds_candidates() {
        let (f, g) = simple_pair();
        let mut w = WeightTable::new(1);
        w.set("a", 5);
        let inst = EcoInstance::from_netlists("u", &f, &g, vec!["t".into()], &w).expect("instance");
        assert_eq!(inst.num_targets(), 1);
        assert_eq!(inst.x_names(), vec!["a", "b", "c"]);
        let a = inst.candidates.iter().find(|c| c.name == "a").expect("a");
        assert_eq!(a.weight, 5);
        // Output y depends on target t — must not be a candidate.
        assert!(!inst.candidates.iter().any(|c| c.name == "y"));
        assert!(!inst.candidates.iter().any(|c| c.name == "t"));
    }

    #[test]
    fn unknown_target_rejected() {
        let (f, g) = simple_pair();
        let w = WeightTable::new(1);
        let err = EcoInstance::from_netlists("u", &f, &g, vec!["zz".into()], &w).unwrap_err();
        assert_eq!(err, EcoError::UnknownTarget("zz".into()));
    }

    #[test]
    fn golden_input_must_exist_in_faulty() {
        let f = parse_verilog("module f (t, y); input t; output y; buf g (y, t); endmodule")
            .expect("f");
        let g = parse_verilog("module g (q, y); input q; output y; buf g (y, q); endmodule")
            .expect("g");
        let w = WeightTable::new(1);
        let err = EcoInstance::from_netlists("u", &f, &g, vec!["t".into()], &w).unwrap_err();
        assert_eq!(err, EcoError::MissingInput("q".into()));
    }

    #[test]
    fn output_sets_must_match() {
        let f =
            parse_verilog("module f (a, t, y); input a, t; output y; and g (y, a, t); endmodule")
                .expect("f");
        let g = parse_verilog("module g (a, z); input a; output z; buf g (z, a); endmodule")
            .expect("g");
        let w = WeightTable::new(1);
        let err = EcoInstance::from_netlists("u", &f, &g, vec!["t".into()], &w).unwrap_err();
        assert!(matches!(err, EcoError::OutputMismatch(_)));
    }

    #[test]
    fn candidate_depending_on_target_rejected_in_new() {
        let (f, g) = simple_pair();
        let felab = elaborate(&f).expect("elab");
        let gelab = elaborate(&g).expect("elab");
        let bad = BaseCandidate {
            name: "y".into(),
            lit: felab.net_lits["y"],
            weight: 1,
        };
        let err =
            EcoInstance::new("u", felab.aig, gelab.aig, vec!["t".into()], vec![bad]).unwrap_err();
        assert!(matches!(err, EcoError::UnknownTarget(_)));
    }
}
