//! Run-wide resource governance: deadlines, cooperative cancellation, and
//! per-cluster conflict metering.
//!
//! A [`Budget`] is the shared governor handle threaded through the whole
//! pipeline. It carries an optional wall-clock deadline, an optional
//! per-cluster conflict allowance, and a cooperative cancellation flag.
//! Long-running stages poll [`Budget::expired`] between units of work and
//! pass [`Budget::ctl`] into SAT solvers so an in-flight search aborts
//! between Luby restarts instead of running to completion.
//!
//! Conflict accounting is deliberately *worker-local*: each cluster worker
//! draws a private [`ConflictMeter`] from the budget and charges it with
//! the deterministic conflict counts of its own SAT calls. Because no
//! global counter races across threads, the set of clusters diagnosed
//! [`ClusterDiagnosis::BudgetExhausted`] is identical for any `--jobs`
//! value — degradation is reproducible.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eco_sat::SolveCtl;

/// User-facing resource limits (the CLI's `--timeout` and
/// `--conflict-budget` flags map onto the two fields 1:1). The default is
/// fully unlimited, which preserves pre-governor behavior exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct BudgetOptions {
    /// Wall-clock limit for the whole run.
    pub timeout: Option<Duration>,
    /// SAT conflict allowance granted to each cluster worker, and the cap
    /// applied to every serial stage's own conflict budget.
    pub cluster_conflicts: Option<u64>,
}

impl BudgetOptions {
    /// Returns `true` if no limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none() && self.cluster_conflicts.is_none()
    }
}

/// The shared run-wide governor handle. Cheap to clone; all clones share
/// one cancellation flag.
#[derive(Clone, Debug)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
    cluster_conflicts: Option<u64>,
}

impl Budget {
    /// Starts the governor clock: the deadline (if any) is `now + timeout`.
    pub fn new(opts: &BudgetOptions) -> Self {
        Budget {
            deadline: opts.timeout.map(|t| Instant::now() + t),
            cancel: Arc::new(AtomicBool::new(false)),
            cluster_conflicts: opts.cluster_conflicts,
        }
    }

    /// A governor that never fires.
    pub fn unlimited() -> Self {
        Budget::new(&BudgetOptions::default())
    }

    /// Returns `true` if neither a deadline nor a conflict allowance is
    /// set; governed code paths use this to fall back to their exact
    /// pre-governor behavior.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cluster_conflicts.is_none()
    }

    /// Polls the deadline and the cancellation flag. Once the deadline
    /// passes the flag is latched, so every later poll — and every solver
    /// enrolled via [`Budget::ctl`] — observes the stop without re-reading
    /// the clock.
    pub fn expired(&self) -> bool {
        if self.cancel.load(Ordering::Relaxed) {
            return true;
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.cancel.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Latches the cancellation flag immediately (external abort).
    pub fn cancel_now(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// A [`SolveCtl`] enrolling a solver in this governor: the solver
    /// aborts between Luby restarts once the deadline passes or the flag
    /// is raised. Unlimited budgets yield the unlimited control block, so
    /// enrolling is a no-op on ungoverned runs.
    pub fn ctl(&self) -> SolveCtl {
        if self.is_unlimited() {
            SolveCtl::unlimited()
        } else {
            SolveCtl {
                deadline: self.deadline,
                cancel: Some(self.cancel.clone()),
            }
        }
    }

    /// The per-cluster conflict allowance, if any.
    pub fn cluster_conflicts(&self) -> Option<u64> {
        self.cluster_conflicts
    }

    /// Derives a child budget sharing this governor's deadline and
    /// cancellation flag but with its own per-cluster conflict allowance.
    ///
    /// The batch runner uses this to apportion one run-wide budget across
    /// jobs: every job observes the same wall-clock deadline (and a
    /// [`Budget::cancel_now`] on the parent stops them all), while conflict
    /// allowances are divided so one hard job cannot starve the rest.
    pub fn child(&self, cluster_conflicts: Option<u64>) -> Budget {
        Budget {
            deadline: self.deadline,
            cancel: Arc::clone(&self.cancel),
            cluster_conflicts,
        }
    }

    /// Draws a fresh worker-local meter charged against the per-cluster
    /// allowance.
    pub fn meter(&self) -> ConflictMeter {
        ConflictMeter {
            remaining: self.cluster_conflicts,
        }
    }

    /// Caps a serial stage's own conflict budget at the governed
    /// allowance (identity when unlimited).
    pub fn cap(&self, budget: u64) -> u64 {
        match self.cluster_conflicts {
            Some(c) => budget.min(c),
            None => budget,
        }
    }
}

/// A worker-local conflict allowance. Charged with the deterministic
/// conflict counts of finished SAT calls, never with wall-clock time, so
/// exhaustion is reproducible across thread counts.
#[derive(Clone, Debug)]
pub struct ConflictMeter {
    remaining: Option<u64>,
}

impl ConflictMeter {
    /// A meter that never exhausts.
    pub fn unlimited() -> Self {
        ConflictMeter { remaining: None }
    }

    /// Returns `true` if the meter never exhausts.
    pub fn is_unlimited(&self) -> bool {
        self.remaining.is_none()
    }

    /// Deducts `conflicts` (saturating at zero).
    pub fn charge(&mut self, conflicts: u64) {
        if let Some(r) = &mut self.remaining {
            *r = r.saturating_sub(conflicts);
        }
    }

    /// Returns `true` once the allowance is spent.
    pub fn exhausted(&self) -> bool {
        self.remaining == Some(0)
    }

    /// Conflicts left, or `None` when unlimited.
    pub fn remaining(&self) -> Option<u64> {
        self.remaining
    }

    /// Caps a stage budget at what is left (identity when unlimited).
    pub fn cap(&self, budget: u64) -> u64 {
        match self.remaining {
            Some(r) => budget.min(r),
            None => budget,
        }
    }
}

/// Why a cluster did, or did not, produce its patches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterDiagnosis {
    /// All targets in the cluster were patched.
    Patched,
    /// The cluster's conflict allowance ran out mid-synthesis.
    BudgetExhausted,
    /// The run deadline (or an external cancel) fired before or during
    /// the cluster's work.
    Deadline,
    /// The worker panicked; the payload is the panic message.
    Panicked(String),
}

impl ClusterDiagnosis {
    /// Stable machine-readable tag (used in telemetry events and JSON).
    pub fn tag(&self) -> &'static str {
        match self {
            ClusterDiagnosis::Patched => "patched",
            ClusterDiagnosis::BudgetExhausted => "budget-exhausted",
            ClusterDiagnosis::Deadline => "deadline",
            ClusterDiagnosis::Panicked(_) => "panicked",
        }
    }
}

impl fmt::Display for ClusterDiagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterDiagnosis::Panicked(msg) => write!(f, "panicked: {msg}"),
            other => f.write_str(other.tag()),
        }
    }
}

/// Per-cluster outcome in a degraded run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Target names in the cluster, in instance order.
    pub targets: Vec<String>,
    /// What happened to the cluster.
    pub diagnosis: ClusterDiagnosis,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fires() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(!b.expired());
        assert!(b.ctl().is_unlimited());
        assert_eq!(b.cap(123), 123);
        let mut m = b.meter();
        assert!(m.is_unlimited());
        m.charge(u64::MAX);
        assert!(!m.exhausted());
        assert_eq!(m.cap(7), 7);
    }

    #[test]
    fn zero_timeout_expires_and_latches() {
        let b = Budget::new(&BudgetOptions {
            timeout: Some(Duration::ZERO),
            cluster_conflicts: None,
        });
        assert!(b.expired());
        // The latch means the shared ctl flag is raised too.
        let ctl = b.ctl();
        assert!(ctl.expired());
        assert!(b.expired(), "latched");
    }

    #[test]
    fn cancel_now_propagates_through_clones_and_ctl() {
        let b = Budget::new(&BudgetOptions {
            timeout: None,
            cluster_conflicts: Some(10),
        });
        let clone = b.clone();
        let ctl = b.ctl();
        assert!(!clone.expired());
        b.cancel_now();
        assert!(clone.expired());
        assert!(ctl.expired());
    }

    #[test]
    fn meter_charges_and_caps() {
        let b = Budget::new(&BudgetOptions {
            timeout: None,
            cluster_conflicts: Some(100),
        });
        assert_eq!(b.cap(1 << 20), 100);
        assert_eq!(b.cap(3), 3);
        let mut m = b.meter();
        assert_eq!(m.remaining(), Some(100));
        m.charge(60);
        assert_eq!(m.cap(1 << 20), 40);
        assert!(!m.exhausted());
        m.charge(1000);
        assert!(m.exhausted());
        assert_eq!(m.remaining(), Some(0));
    }

    #[test]
    fn child_shares_cancel_but_not_allowance() {
        let parent = Budget::new(&BudgetOptions {
            timeout: None,
            cluster_conflicts: Some(100),
        });
        let child = parent.child(Some(25));
        assert_eq!(child.cluster_conflicts(), Some(25));
        assert_eq!(child.cap(1 << 20), 25);
        assert!(!child.expired());
        parent.cancel_now();
        assert!(child.expired(), "child observes the parent's cancel");

        let unlimited_child = parent.child(None);
        assert!(unlimited_child.cluster_conflicts().is_none());
    }

    #[test]
    fn diagnosis_tags_are_stable() {
        assert_eq!(ClusterDiagnosis::Patched.tag(), "patched");
        assert_eq!(
            ClusterDiagnosis::BudgetExhausted.to_string(),
            "budget-exhausted"
        );
        assert_eq!(ClusterDiagnosis::Deadline.to_string(), "deadline");
        let p = ClusterDiagnosis::Panicked("boom".into());
        assert_eq!(p.tag(), "panicked");
        assert_eq!(p.to_string(), "panicked: boom");
    }
}
