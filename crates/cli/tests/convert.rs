//! End-to-end tests of the `eco-convert` binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_eco-convert"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eco-convert-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

const SRC: &str = "module m (a, b, c, y, z);\ninput a, b, c;\noutput y, z;\n\
                   wire w;\nand g1 (w, a, b);\nxor g2 (y, w, c);\nnor g3 (z, a, c);\nendmodule\n";

fn eval_file(path: &PathBuf, vals: &[bool]) -> Vec<bool> {
    let name = path.to_str().expect("utf8 path");
    let aig = match path.extension().and_then(|e| e.to_str()) {
        Some("v") => {
            let nl = eco_netlist::parse_verilog(&std::fs::read_to_string(path).expect("read"))
                .expect("verilog parses");
            eco_netlist::elaborate(&nl).expect("elaborates").aig
        }
        Some("blif") => {
            eco_netlist::parse_blif(&std::fs::read_to_string(path).expect("read"))
                .expect("blif parses")
                .aig
        }
        Some("aag") => eco_aig::parse_aiger_ascii(&std::fs::read_to_string(path).expect("read"))
            .expect("aag parses"),
        Some("aig") => {
            eco_aig::parse_aiger_binary(&std::fs::read(path).expect("read")).expect("aig parses")
        }
        other => panic!("unexpected extension {other:?} for {name}"),
    };
    aig.eval(vals)
}

#[test]
fn all_format_chains_preserve_semantics() {
    let dir = tmpdir("chain");
    let v0 = dir.join("m.v");
    std::fs::write(&v0, SRC).expect("write");
    // v -> blif -> aag -> aig -> v
    let chain = [
        dir.join("m.blif"),
        dir.join("m.aag"),
        dir.join("m.aig"),
        dir.join("m2.v"),
    ];
    let mut prev = v0.clone();
    for next in &chain {
        let out = bin()
            .args(["-i", prev.to_str().expect("path")])
            .args(["-o", next.to_str().expect("path")])
            .output()
            .expect("run");
        assert!(
            out.status.success(),
            "{prev:?} -> {next:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        prev = next.clone();
    }
    for bits in 0u32..8 {
        let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
        let want = eval_file(&v0, &vals);
        for f in &chain {
            assert_eq!(eval_file(f, &vals), want, "{f:?} at {vals:?}");
        }
    }
}

#[test]
fn reports_stats_on_stderr() {
    let dir = tmpdir("stats");
    let v0 = dir.join("m.v");
    std::fs::write(&v0, SRC).expect("write");
    let out = bin()
        .args(["-i", v0.to_str().expect("path")])
        .args(["-o", dir.join("m.blif").to_str().expect("path")])
        .output()
        .expect("run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("3 inputs, 2 outputs"), "stderr: {stderr}");
}

#[test]
fn bad_usage_and_formats_fail() {
    let out = bin().output().expect("run");
    assert_eq!(out.status.code(), Some(1));

    let dir = tmpdir("bad");
    let v0 = dir.join("m.v");
    std::fs::write(&v0, SRC).expect("write");
    let out = bin()
        .args(["-i", v0.to_str().expect("path")])
        .args(["-o", dir.join("m.xyz").to_str().expect("path")])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported output format"));

    let out = bin()
        .args([
            "-i",
            "/nonexistent.v",
            "-o",
            dir.join("x.blif").to_str().expect("path"),
        ])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1));
}
