//! The deterministic worker-pool primitives shared by the batch runner
//! and the `eco-serve` daemon.
//!
//! Two shapes of work distribution live here:
//!
//! * [`run_indexed`] — the batch runner's claim-counter pool: `count`
//!   indexed tasks, one shared [`AtomicUsize`] that workers draw the next
//!   unclaimed index from, one result slot per index merged back in index
//!   order. Results are position-stable whatever the interleaving.
//! * [`BoundedQueue`] — the daemon's admission-control queue: a blocking
//!   MPMC queue with a hard capacity (pushes beyond it are refused, never
//!   blocked, so the caller can shed load with a typed "busy" response)
//!   and explicit close semantics for graceful drain (a closed queue
//!   refuses new work while pops keep draining what was admitted).
//!
//! # Panic containment
//!
//! Both primitives survive panicking tasks. `run_indexed` wraps every
//! task in [`catch_unwind`] and substitutes the caller's `on_panic`
//! record, so one exploding job becomes one error result instead of a
//! dead worker. All internal locks recover from poisoning via
//! [`PoisonError::into_inner`]: the protected data is a plain
//! `Option<T>` slot or `VecDeque` whose invariants hold at every await
//! point, so a panic while a lock was held must degrade to "use the data
//! as-is", not abort every sibling worker holding the same stripe.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning. Safe whenever the protected
/// data is valid at every point a panic can unwind through (true for the
/// plain-data containers this module guards).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `count` indexed tasks over `workers` threads with work stealing
/// at task granularity, returning results in index order.
///
/// Each worker repeatedly claims the next unclaimed index from a shared
/// atomic counter and stores `run(index)` into that index's slot, so a
/// worker finishing early immediately picks up remaining work. A task
/// that panics contributes `on_panic(index)` instead of killing its
/// worker (or, transitively, the pool). `workers <= 1` runs inline on
/// the caller's thread with identical semantics.
///
/// `on_panic` must not itself panic; if it does, the panic propagates to
/// the caller after the pool drains.
pub fn run_indexed<T, F, P>(workers: usize, count: usize, run: F, on_panic: P) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(usize) -> T + Sync,
{
    let run_caught = |index: usize| {
        catch_unwind(AssertUnwindSafe(|| run(index))).unwrap_or_else(|_| on_panic(index))
    };
    if workers <= 1 || count <= 1 {
        return (0..count).map(run_caught).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(count) {
            s.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                let result = run_caught(index);
                // A sibling's panic while writing must not cascade: the
                // slot holds a plain `Option`, safe to use after poison.
                *lock_recovering(&slots[index]) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // Every slot is filled before the scope exits; the
                // fallback only fires if `on_panic` itself panicked.
                .unwrap_or_else(|| on_panic(index))
        })
        .collect()
}

/// Why a [`BoundedQueue::try_push`] was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed load (typed "busy" response).
    Full,
    /// The queue was closed for admission (drain in progress).
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking MPMC queue with close-for-drain semantics — the
/// admission-control core of the `eco-serve` daemon.
///
/// Producers use [`BoundedQueue::try_push`], which never blocks: beyond
/// `capacity` (or after [`BoundedQueue::close`]) the item comes straight
/// back with a typed reason. Consumers use [`BoundedQueue::pop`], which
/// blocks until an item arrives or the queue is closed *and* empty —
/// admitted work always drains before workers see the shutdown.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    readable: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` queued items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            readable: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits `item`, or returns it with the refusal reason. Never
    /// blocks.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut state = lock_recovering(&self.inner);
        if state.closed {
            return Err((item, PushError::Closed));
        }
        if state.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        state.items.push_back(item);
        drop(state);
        self.readable.notify_one();
        Ok(())
    }

    /// Blocks for the next admitted item; `None` once the queue is
    /// closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock_recovering(&self.inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .readable
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes admission: later pushes are refused with
    /// [`PushError::Closed`], pops drain the remainder then return
    /// `None`, and all blocked consumers wake.
    pub fn close(&self) {
        lock_recovering(&self.inner).closed = true;
        self.readable.notify_all();
    }

    /// Items currently queued (admitted, not yet popped).
    pub fn len(&self) -> usize {
        lock_recovering(&self.inner).items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn run_indexed_preserves_index_order_for_any_worker_count() {
        for workers in [1, 2, 4, 9] {
            let out = run_indexed(workers, 20, |i| i * 3, |_| usize::MAX);
            assert_eq!(out, (0..20).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    /// The regression the batch runner needs: one panicking task becomes
    /// one `on_panic` record while every sibling task still completes —
    /// on the same worker pool, with no poisoned-lock cascade.
    #[test]
    fn panicking_task_yields_error_record_and_siblings_complete() {
        for workers in [1, 4] {
            let out = run_indexed(
                workers,
                12,
                |i| {
                    if i == 5 {
                        panic!("job 5 exploded");
                    }
                    i as i64
                },
                |i| -(i as i64),
            );
            let expect: Vec<i64> = (0..12).map(|i| if i == 5 { -5 } else { i }).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn many_panics_do_not_exhaust_the_pool() {
        let ran = AtomicU64::new(0);
        let out = run_indexed(
            3,
            50,
            |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i % 2 == 0 {
                    panic!("even index");
                }
                1u64
            },
            |_| 0u64,
        );
        assert_eq!(ran.load(Ordering::Relaxed), 50, "every task was attempted");
        assert_eq!(out.iter().sum::<u64>(), 25);
    }

    /// Directly poisons a slot-style mutex (panic while holding the
    /// guard) and asserts recovery sees the data instead of panicking —
    /// the exact failure mode of the old `.lock().unwrap()` sites.
    #[test]
    fn poisoned_slot_lock_recovers_to_inner_data() {
        let slot: Arc<Mutex<Option<u32>>> = Arc::new(Mutex::new(Some(7)));
        let poisoner = Arc::clone(&slot);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("die while holding the slot lock");
        })
        .join();
        assert!(slot.lock().is_err(), "the lock must actually be poisoned");
        assert_eq!(*lock_recovering(&slot), Some(7));
        *lock_recovering(&slot) = Some(9);
        assert_eq!(
            Arc::try_unwrap(slot)
                .unwrap()
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner),
            Some(9)
        );
    }

    #[test]
    fn bounded_queue_sheds_load_beyond_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (item, reason) = q.try_push(3).unwrap_err();
        assert_eq!((item, reason), (3, PushError::Full));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok(), "capacity frees as items pop");
    }

    #[test]
    fn closed_queue_refuses_new_work_but_drains_admitted_work() {
        let q = BoundedQueue::new(4);
        q.try_push("in-flight").unwrap();
        q.close();
        let (_, reason) = q.try_push("late").unwrap_err();
        assert_eq!(reason, PushError::Closed);
        assert_eq!(q.pop(), Some("in-flight"), "admitted work still drains");
        assert_eq!(q.pop(), None, "then consumers see the shutdown");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u8>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn queue_survives_concurrent_producers_and_consumers() {
        let q = BoundedQueue::new(8);
        let popped = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while q.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            s.spawn(|| {
                let mut pushed = 0u64;
                while pushed < 100 {
                    if q.try_push(pushed).is_ok() {
                        pushed += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                q.close();
            });
        });
        assert_eq!(popped.load(Ordering::Relaxed), 100);
    }
}
