//! The top-level ECO engine: the full Fig.-1 flow as a staged pipeline.
//!
//! `FRAIG → clustering → localization → patch generation → cost
//! optimization → verification`, with a completeness fallback: if a
//! localized run fails final verification, the engine retries without
//! localization (recorded as a telemetry event) before declaring the
//! instance unrectifiable.
//!
//! Clusters rectify independently (Fig. 2), so stages 1+3+4 run *per
//! cluster* against an isolated sub-workspace ([`Workspace::for_cluster`])
//! and — when [`EcoOptions::jobs`] allows — in parallel on scoped worker
//! threads. Results are merged back into the shared manager in cluster
//! order, which keeps the flow deterministic: any `jobs` value produces
//! byte-identical patches.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eco_aig::{Aig, Lit, Var};
use eco_fraig::{fraig_classes_memo, fraig_classes_stats, fraig_reduce, FraigOptions, SweepMemo};

use crate::cluster::{cluster_targets, TargetCluster};
use crate::govern::{Budget, BudgetOptions, ClusterDiagnosis, ClusterReport};
use crate::localize::{Cut, CutSignal, TapMap};
use crate::memo::{patch_memo_key, rect_memo_key, MemoCache};
use crate::optimize::{optimize_patches_governed, total_cost, OptimizeOptions};
use crate::patchgen::{
    extract_patch_aig, generate_group_patches_governed, GroupPatches, PatchFn, PatchGenOptions,
};
use crate::rectifiable::{check_rect_cex_portfolio, check_rectifiable_portfolio, Rectifiability};
use crate::sizeopt::{reduce_patch_sizes_governed, SizeOptOptions};
use crate::synth::InitialPatchKind;
use crate::telemetry::{Stage, Telemetry, TelemetrySnapshot};
use crate::verify::{check_equivalence_portfolio, VerifyOutcome};
use crate::{EcoError, EcoInstance, Workspace};
use eco_sat::PortfolioSpec;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EcoOptions {
    /// Run localization (Alg. 2); patches may then use intermediate
    /// signals. Off = patches over primary inputs only.
    pub localization: bool,
    /// How initial patches are synthesized (§4.3).
    pub initial_patch: InitialPatchKind,
    /// Run the §6 cost optimizer.
    pub optimize: bool,
    /// Optimizer knobs.
    pub optimize_opts: OptimizeOptions,
    /// FRAIG sweeping knobs.
    pub fraig: FraigOptions,
    /// SAT conflict budget for synthesis queries.
    pub synth_budget: u64,
    /// SAT conflict budget for final verification.
    pub verify_budget: u64,
    /// Decide Eq. (2) (`∀X ∃T. F = G`) up front via 2QBF CEGAR before any
    /// patch generation. Off by default — final verification already
    /// guarantees soundness — but useful to fail fast on hopeless
    /// instances with a universal counterexample.
    pub precheck_rectifiability: bool,
    /// Run the §2.4 don't-care-based patch size reduction after cost
    /// optimization.
    pub size_optimize: bool,
    /// Knobs for the size reduction pass.
    pub size_opts: SizeOptOptions,
    /// Worker threads for the per-cluster patch-generation stage:
    /// `0` = use [`std::thread::available_parallelism`], `1` = run
    /// sequentially (same code path, so results are identical for every
    /// value). Never more threads than clusters are spawned.
    pub jobs: usize,
    /// Deterministic parallel solver portfolio size for hard unlimited-
    /// budget SAT queries (rectifiability CEGAR, equivalence miters):
    /// `1` (default) keeps the single-solver path; `2..=4` race that many
    /// diversified configurations, first answer wins, with artifacts
    /// pinned to configuration 0 so results are byte-identical for every
    /// value. Finite-budget queries are never raced.
    pub portfolio: usize,
    /// Run-wide resource governor: wall-clock deadline and per-cluster
    /// conflict allowance. Unlimited by default; when unlimited, every
    /// governed code path collapses to the ungoverned one, so results are
    /// identical to a run without the governor.
    pub budget: BudgetOptions,
    /// Shared cross-job memo cache ([`MemoCache`]): whole FRAIG sweeps,
    /// rectifiability verdicts, and complete verified results are reused
    /// across structurally identical (sub-)instances. Hits never change
    /// results — cached values are pure functions of structural keys, and
    /// cached patches are re-verified with a fresh SAT miter before being
    /// returned. Only consulted when the budget is unlimited (a truncated
    /// run's result is not a reusable pure function).
    pub memo: Option<Arc<MemoCache>>,
}

impl Default for EcoOptions {
    fn default() -> Self {
        EcoOptions {
            localization: true,
            initial_patch: InitialPatchKind::OnSet,
            optimize: true,
            optimize_opts: OptimizeOptions::default(),
            fraig: FraigOptions::default(),
            synth_budget: 1 << 22,
            verify_budget: u64::MAX,
            precheck_rectifiability: false,
            size_optimize: true,
            size_opts: SizeOptOptions::default(),
            jobs: 0,
            portfolio: 1,
            budget: BudgetOptions::default(),
            memo: None,
        }
    }
}

impl EcoOptions {
    /// The configuration used as the contest-winner-style *baseline* in
    /// the paper's Table 2 comparison: primary-input-support patches
    /// (reference \[20\]-style), no localization, no cost optimization.
    pub fn baseline() -> Self {
        EcoOptions {
            localization: false,
            optimize: false,
            ..Default::default()
        }
    }
}

/// Wall-clock time per flow stage (Fig. 1) — the classic five-slot view;
/// the full picture (plus the assembly stage and aggregated solver
/// counters) lives in [`EcoResult::telemetry`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimes {
    /// FRAIG sweeping, summed over the per-cluster sub-workspaces. The
    /// sweeps run *inside* the patch-generation stage (and overlap it
    /// when `jobs > 1`), so this slot is CPU time that [`StageTimes::total`]
    /// counts a second time.
    pub fraig: Duration,
    /// Clustering + localization bookkeeping.
    pub clustering: Duration,
    /// Initial patch generation (Alg. 1): wall time of the (possibly
    /// parallel) per-cluster section plus the deterministic merge.
    pub patchgen: Duration,
    /// Cost optimization (§6).
    pub optimize: Duration,
    /// Final verification.
    pub verify: Duration,
}

impl StageTimes {
    /// Total across stages (an upper bound on flow wall time, since the
    /// `fraig` slot overlaps `patchgen`).
    pub fn total(&self) -> Duration {
        self.fraig + self.clustering + self.patchgen + self.optimize + self.verify
    }
}

/// One target's patch, reported over the final patch AIG.
#[derive(Clone, Debug)]
pub struct TargetPatch {
    /// Target name.
    pub target: String,
    /// Base signal names this patch's function reads.
    pub base: Vec<String>,
    /// AND-gate count of this patch's cone (shared gates counted once per
    /// patch here; the global `size` dedups across patches).
    pub size: usize,
}

/// The engine's result.
#[derive(Clone, Debug)]
pub struct EcoResult {
    /// Per-target patches.
    pub patches: Vec<TargetPatch>,
    /// The combined patch circuit: inputs = union of base signals (named
    /// as in the faulty netlist), outputs = target names.
    pub patch_aig: Aig,
    /// Total base cost: sum of weights over the union of base signals.
    pub cost: u64,
    /// Total patch size in AND gates (shared logic counted once).
    pub size: usize,
    /// Stage wall-clock times of the successful attempt.
    pub stage_times: StageTimes,
    /// `true` if the localized attempt failed verification and the engine
    /// fell back to an unlocalized run.
    pub localization_fallback: bool,
    /// Interpolation attempts that fell back to the on-set (§4.3).
    pub interpolation_fallbacks: usize,
    /// Cost before/after the optimization stage.
    pub optimize_delta: (u64, u64),
    /// Full run telemetry (both attempts when the fallback fired):
    /// per-stage wall times, aggregated SAT/FRAIG counters, events.
    pub telemetry: TelemetrySnapshot,
}

/// A governed run's outcome: either the full flow finished, or the
/// resource governor degraded it to a partial result.
#[derive(Clone, Debug)]
pub enum EcoOutcome {
    /// Every cluster was patched and the result verified.
    Complete(EcoResult),
    /// The run hit its deadline or conflict budget (or a cluster worker
    /// panicked); whatever completed is reported with per-cluster
    /// diagnoses.
    Partial(PartialResult),
}

/// Graceful-degradation result: the patches that *did* complete plus a
/// per-cluster diagnosis of what happened to the rest.
///
/// The completed patches are individually correct for their own clusters,
/// but the combined result has **not** passed final verification — it is a
/// best-effort artifact for triage, not a drop-in rectification.
#[derive(Clone, Debug)]
pub struct PartialResult {
    /// Why the run degraded (first binding limit).
    pub reason: String,
    /// Patches from clusters that completed before the limit hit.
    pub patches: Vec<TargetPatch>,
    /// Combined patch circuit over the completed clusters (empty when none
    /// completed or partial assembly itself failed).
    pub patch_aig: Aig,
    /// Base cost over the completed patches.
    pub cost: u64,
    /// AND-gate count of the completed patch circuit.
    pub size: usize,
    /// One report per target cluster, in cluster order.
    pub clusters: Vec<ClusterReport>,
    /// Stage wall-clock times up to the point of degradation.
    pub stage_times: StageTimes,
    /// Full run telemetry, including the governor counters.
    pub telemetry: TelemetrySnapshot,
}

/// One flow attempt's outcome (internal).
enum AttemptOutcome {
    Done(EcoResult),
    Cex(Vec<(String, bool)>),
    Degraded(PartialResult),
}

/// The cost-aware multi-target ECO patch generator.
///
/// # Examples
///
/// ```
/// use eco_core::{EcoEngine, EcoInstance, EcoOptions};
/// use eco_netlist::{parse_verilog, WeightTable};
///
/// let faulty = parse_verilog(
///     "module f (a, b, c, t, y); input a, b, c, t; output y;
///      xor g1 (y, t, c); endmodule",
/// )?;
/// let golden = parse_verilog(
///     "module g (a, b, c, y); input a, b, c; output y;
///      wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
/// )?;
/// let inst = EcoInstance::from_netlists(
///     "demo", &faulty, &golden, vec!["t".into()], &WeightTable::new(1),
/// )?;
/// let result = EcoEngine::new(inst, EcoOptions::default()).run()?;
/// assert_eq!(result.patches[0].target, "t");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EcoEngine {
    instance: EcoInstance,
    options: EcoOptions,
}

/// Everything one cluster's isolated rectification produced: the
/// sub-workspace (whose manager holds the patch cones), the generated
/// group, and the sweep time spent.
struct ClusterOutcome {
    sub: Workspace,
    group: GroupPatches,
    fraig_time: Duration,
}

impl EcoEngine {
    /// Creates an engine over a validated instance.
    pub fn new(instance: EcoInstance, options: EcoOptions) -> Self {
        EcoEngine { instance, options }
    }

    /// The instance under rectification.
    pub fn instance(&self) -> &EcoInstance {
        &self.instance
    }

    /// Runs the full flow.
    ///
    /// # Errors
    ///
    /// [`EcoError::Unrectifiable`] when no patch over the given targets can
    /// make the circuits equivalent (witnessed by a failed final
    /// verification of the complete, unlocalized derivation), and
    /// [`EcoError::ResourceLimit`] when verification exhausts its budget
    /// or the [`EcoOptions::budget`] governor degrades the run (use
    /// [`EcoEngine::run_governed`] to receive the partial result instead).
    pub fn run(&self) -> Result<EcoResult, EcoError> {
        match self.run_governed()? {
            EcoOutcome::Complete(result) => Ok(result),
            EcoOutcome::Partial(partial) => Err(EcoError::ResourceLimit(format!(
                "run degraded to a partial result: {}",
                partial.reason
            ))),
        }
    }

    /// Runs the full flow under the [`EcoOptions::budget`] governor,
    /// returning a graceful [`EcoOutcome::Partial`] instead of an error
    /// when the deadline or conflict budget cuts the run short.
    ///
    /// With an unlimited budget this behaves exactly like [`run`] (modulo
    /// the return type): the only way to see `Partial` is a panicking
    /// cluster worker, which the engine isolates and reports instead of
    /// aborting the process.
    ///
    /// [`run`]: EcoEngine::run
    ///
    /// # Errors
    ///
    /// As [`EcoEngine::run`], except budget-driven degradation is a
    /// successful `Partial` outcome rather than an error.
    pub fn run_governed(&self) -> Result<EcoOutcome, EcoError> {
        self.run_governed_with(&Budget::new(&self.options.budget))
    }

    /// Like [`EcoEngine::run_governed`], but under an externally supplied
    /// [`Budget`] — the batch runner apportions one run-wide governor
    /// across jobs with [`Budget::child`] and drives each job through
    /// here.
    ///
    /// This is also where the [`EcoOptions::memo`] whole-instance lookup
    /// happens: a cached result is returned only after a fresh SAT miter
    /// re-verifies it against this engine's instance; a refuted entry is
    /// counted as a fallback and the full pipeline runs instead.
    ///
    /// # Errors
    ///
    /// As [`EcoEngine::run_governed`].
    pub fn run_governed_with(&self, budget: &Budget) -> Result<EcoOutcome, EcoError> {
        let tel = Telemetry::new();
        let memo = self
            .options
            .memo
            .as_deref()
            .filter(|_| budget.is_unlimited())
            .map(|m| (m, patch_memo_key(&self.instance, &self.options)));
        if let Some((cache, (key, check))) = memo {
            if let Some(mut cached) = cache.lookup_patch(key, check) {
                tel.add_memo_hit();
                let t0 = Instant::now();
                if self.reverify_patch(&cached, budget, &tel) {
                    cached.stage_times.verify = t0.elapsed();
                    cached.telemetry = tel.snapshot();
                    return Ok(EcoOutcome::Complete(cached));
                }
                cache.record_fallback();
                tel.add_memo_fallback();
            } else {
                tel.add_memo_miss();
            }
        }
        let outcome = self.run_attempts(budget, &tel)?;
        if let (Some((cache, (key, check))), EcoOutcome::Complete(result)) = (memo, &outcome) {
            cache.store_patch(key, check, result);
        }
        Ok(outcome)
    }

    /// The localized attempt plus its completeness fallback (the former
    /// body of `run_governed`, memo-free).
    fn run_attempts(&self, budget: &Budget, tel: &Telemetry) -> Result<EcoOutcome, EcoError> {
        let outcome = match self.attempt(self.options.localization, budget, tel)? {
            AttemptOutcome::Done(result) => EcoOutcome::Complete(result),
            AttemptOutcome::Degraded(partial) => EcoOutcome::Partial(partial),
            AttemptOutcome::Cex(cex) if self.options.localization => {
                // Completeness fallback: retry without localization.
                tel.add_localization_fallback();
                tel.event(
                    Stage::Verify,
                    "localization_fallback",
                    format!(
                        "localized attempt failed final verification ({}); \
                         retrying without localization",
                        cex_summary(&cex)
                    ),
                );
                match self.attempt(false, budget, tel)? {
                    AttemptOutcome::Done(mut result) => {
                        result.localization_fallback = true;
                        EcoOutcome::Complete(result)
                    }
                    AttemptOutcome::Degraded(partial) => EcoOutcome::Partial(partial),
                    AttemptOutcome::Cex(cex) => {
                        return Err(EcoError::Unrectifiable(format!(
                            "verification counterexample: {}",
                            cex_summary(&cex)
                        )))
                    }
                }
            }
            AttemptOutcome::Cex(cex) => {
                return Err(EcoError::Unrectifiable(format!(
                    "verification counterexample: {}",
                    cex_summary(&cex)
                )))
            }
        };
        Ok(match outcome {
            EcoOutcome::Complete(mut result) => {
                result.telemetry = tel.snapshot();
                EcoOutcome::Complete(result)
            }
            EcoOutcome::Partial(mut partial) => {
                partial.telemetry = tel.snapshot();
                EcoOutcome::Partial(partial)
            }
        })
    }

    /// Freshly SAT-verifies a cached result's patch circuit against this
    /// engine's instance: the patch AIG is imported over a clean workspace
    /// by input name, substituted into the targets, and the full output
    /// miter checked — exactly the stage-6 check, so a memo hit meets the
    /// same bar as a freshly derived patch. Any mapping failure or
    /// non-equivalence returns `false`, so a poisoned or colliding cache
    /// entry can never be returned as a result.
    fn reverify_patch(&self, result: &EcoResult, budget: &Budget, tel: &Telemetry) -> bool {
        let t0 = Instant::now();
        let ws = Workspace::new(&self.instance);
        let mut mgr = ws.mgr.clone();
        let mut imap: HashMap<Var, Lit> = HashMap::new();
        for pos in 0..result.patch_aig.num_inputs() {
            let name = result.patch_aig.input_name(pos);
            let Some(lit) = ws
                .cands
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.lit)
                .or_else(|| ws.x_lit(name))
            else {
                return false;
            };
            imap.insert(result.patch_aig.input_var(pos), lit);
        }
        let proots: Vec<Lit> = result.patch_aig.outputs().iter().map(|o| o.lit).collect();
        let Ok(plits) = mgr.import(&result.patch_aig, &proots, &imap) else {
            return false;
        };
        let mut tmap: HashMap<Var, Lit> = HashMap::new();
        for (o, &l) in result.patch_aig.outputs().iter().zip(&plits) {
            let Some(k) = self.instance.targets.iter().position(|t| *t == o.name) else {
                return false;
            };
            tmap.insert(ws.target_vars[k], l);
        }
        if tmap.len() != self.instance.targets.len() {
            return false;
        }
        let patched = mgr.substitute(&ws.f_outs.clone(), &tmap);
        let pairs: Vec<(Lit, Lit)> = patched.into_iter().zip(ws.g_outs.clone()).collect();
        let verdict = check_equivalence_portfolio(
            &mut mgr,
            &pairs,
            budget.cap(self.options.verify_budget),
            &budget.ctl(),
            &PortfolioSpec::new(self.options.portfolio),
            tel,
        );
        tel.add_stage(Stage::Verify, t0.elapsed());
        matches!(verdict, VerifyOutcome::Equivalent)
    }

    /// Rectifies one cluster against its own sub-workspace with panic
    /// isolation: a worker that panics (a solver bug, a pathological
    /// input) is reported as a per-cluster diagnosis instead of tearing
    /// the whole run down. Safe to call from worker threads.
    fn rectify_cluster_governed(
        &self,
        ws: &Workspace,
        cluster: &TargetCluster,
        localization: bool,
        pg_opts: &PatchGenOptions,
        budget: &Budget,
        tel: &Telemetry,
    ) -> Result<ClusterOutcome, ClusterDiagnosis> {
        if budget.expired() {
            return Err(ClusterDiagnosis::Deadline);
        }
        catch_unwind(AssertUnwindSafe(|| {
            self.rectify_cluster_metered(ws, cluster, localization, pg_opts, budget, tel)
        }))
        .unwrap_or_else(|payload| Err(ClusterDiagnosis::Panicked(panic_message(&*payload))))
    }

    /// The cluster flow proper: FRAIG + tap map (when localizing) and
    /// Alg.-1 patch generation, all without touching the shared manager.
    ///
    /// Conflict accounting is strictly worker-local: the cluster draws a
    /// fresh [`ConflictMeter`](crate::ConflictMeter) from the budget and
    /// charges it with deterministic SAT conflict counts, so whether a
    /// cluster degrades never depends on how many workers run beside it.
    fn rectify_cluster_metered(
        &self,
        ws: &Workspace,
        cluster: &TargetCluster,
        localization: bool,
        pg_opts: &PatchGenOptions,
        budget: &Budget,
        tel: &Telemetry,
    ) -> Result<ClusterOutcome, ClusterDiagnosis> {
        let mut meter = budget.meter();
        if meter.exhausted() {
            return Err(ClusterDiagnosis::BudgetExhausted);
        }
        let (mut sub, local) = ws.for_cluster(cluster);
        let t0 = Instant::now();
        let tap = if localization {
            let mut fraig_opts = self.options.fraig.clone();
            if let Some(remaining) = meter.remaining() {
                // The sweep shares the cluster's allowance: cap its total
                // spend at what remains and keep per-query budgets inside
                // that (at least 1 so the option stays meaningful).
                fraig_opts.max_total_conflicts = remaining;
                fraig_opts.conflict_budget = fraig_opts.conflict_budget.min(remaining.max(1));
            }
            if !budget.is_unlimited() {
                fraig_opts.ctl = budget.ctl();
            }
            // Cross-job memo: structurally identical sub-workspaces sweep
            // once. `fraig_classes_stats` never mutates the AIG and the
            // classes are a pure function of (AIG, options), so a hit
            // leaves `sub` and every downstream artifact byte-identical
            // to a fresh sweep — only the solver time is skipped.
            let memo = self
                .options
                .memo
                .as_deref()
                .filter(|_| budget.is_unlimited());
            let classes = match memo {
                Some(cache) => {
                    let (classes, sweep, hit) =
                        fraig_classes_memo(&sub.mgr, &fraig_opts, cache as &dyn SweepMemo);
                    if hit {
                        tel.add_memo_hit();
                    } else {
                        tel.add_memo_miss();
                        tel.record_sweep(&sweep);
                        meter.charge(sweep.sat.conflicts);
                    }
                    classes
                }
                None => {
                    let (classes, sweep) = fraig_classes_stats(&sub.mgr, &fraig_opts);
                    tel.record_sweep(&sweep);
                    meter.charge(sweep.sat.conflicts);
                    classes
                }
            };
            TapMap::build(&sub, &classes)
        } else {
            TapMap::empty()
        };
        let fraig_time = t0.elapsed();
        tel.add_stage(Stage::Fraig, fraig_time);
        if budget.expired() {
            return Err(ClusterDiagnosis::Deadline);
        }
        if meter.exhausted() {
            return Err(ClusterDiagnosis::BudgetExhausted);
        }
        let group = generate_group_patches_governed(
            &mut sub, &tap, &local, pg_opts, budget, &mut meter, tel,
        )?;
        Ok(ClusterOutcome {
            sub,
            group,
            fraig_time,
        })
    }

    /// One flow attempt.
    fn attempt(
        &self,
        localization: bool,
        budget: &Budget,
        tel: &Telemetry,
    ) -> Result<AttemptOutcome, EcoError> {
        let opts = &self.options;
        let governed = !budget.is_unlimited();
        let mut times = StageTimes::default();
        let mut ws = Workspace::new(&self.instance);

        // Stage 2: clustering (stage 1, FRAIG, now runs per cluster below).
        let t0 = Instant::now();
        let clustering = cluster_targets(&ws);
        times.clustering = t0.elapsed();
        tel.add_stage(Stage::Clustering, times.clustering);

        if governed && budget.expired() {
            tel.event(
                Stage::Clustering,
                "run_degraded",
                "deadline expired before patch generation".to_string(),
            );
            return Ok(self.degrade_all_clusters(
                &ws,
                &clustering.clusters,
                ClusterDiagnosis::Deadline,
                "deadline expired before patch generation",
                times,
                tel,
            ));
        }

        if opts.precheck_rectifiability {
            // The CEGAR check builds scratch nodes, so it runs on a
            // throwaway workspace: the main manager stays untouched and a
            // memo hit (which skips the check entirely) leaves the rest of
            // the flow byte-identical to a fresh run.
            let mut scratch = Workspace::new(&self.instance);
            let memo = opts.memo.as_deref().filter(|_| budget.is_unlimited());
            let memo = memo.map(|m| (m, rect_memo_key(&self.instance, opts)));
            let mut verdict = None;
            if let Some((cache, (key, check))) = memo {
                match cache.lookup_rect(key, check) {
                    Some(Rectifiability::Rectifiable) => {
                        // Trusted as-is: a wrong `Rectifiable` only delays
                        // failure to the (always fresh) final verification.
                        tel.add_memo_hit();
                        verdict = Some(Rectifiability::Rectifiable);
                    }
                    Some(Rectifiability::Counterexample(cex)) => {
                        // Audit the claimed universal counterexample with
                        // one cheap B-check before declaring defeat.
                        tel.add_memo_hit();
                        if check_rect_cex_portfolio(
                            &mut scratch,
                            &cex,
                            budget.cap(opts.verify_budget),
                            &budget.ctl(),
                            &PortfolioSpec::new(opts.portfolio),
                            tel,
                        ) == Some(true)
                        {
                            verdict = Some(Rectifiability::Counterexample(cex));
                        } else {
                            cache.record_fallback();
                            tel.add_memo_fallback();
                        }
                    }
                    _ => tel.add_memo_miss(),
                }
            }
            let verdict = match verdict {
                Some(v) => v,
                None => {
                    let v = check_rectifiable_portfolio(
                        &mut scratch,
                        256,
                        budget.cap(opts.verify_budget),
                        &budget.ctl(),
                        &PortfolioSpec::new(opts.portfolio),
                        tel,
                    );
                    if let Some((cache, (key, check))) = memo {
                        if !matches!(v, Rectifiability::Unknown) {
                            cache.store_rect(key, check, &v);
                        }
                    }
                    v
                }
            };
            match verdict {
                Rectifiability::Rectifiable => {}
                Rectifiability::Counterexample(cex) => {
                    return Err(EcoError::Unrectifiable(format!(
                        "Eq. (2) counterexample: no target assignment works at {cex:?}"
                    )))
                }
                Rectifiability::Unknown if governed => {
                    let diag = if budget.expired() {
                        ClusterDiagnosis::Deadline
                    } else {
                        ClusterDiagnosis::BudgetExhausted
                    };
                    tel.event(
                        Stage::Verify,
                        "run_degraded",
                        "rectifiability precheck budget exhausted".to_string(),
                    );
                    return Ok(self.degrade_all_clusters(
                        &ws,
                        &clustering.clusters,
                        diag,
                        "rectifiability precheck budget exhausted",
                        times,
                        tel,
                    ));
                }
                Rectifiability::Unknown => {
                    return Err(EcoError::ResourceLimit("rectifiability precheck".into()))
                }
            }
        }

        // Untouched outputs must already match — otherwise no patch can
        // ever rectify them (fast necessary condition for Eq. 2).
        if !clustering.untouched_outputs.is_empty() {
            let pairs: Vec<(Lit, Lit)> = clustering
                .untouched_outputs
                .iter()
                .map(|&j| (ws.f_outs[j], ws.g_outs[j]))
                .collect();
            let t0 = Instant::now();
            let verdict = check_equivalence_portfolio(
                &mut ws.mgr,
                &pairs,
                budget.cap(opts.verify_budget),
                &budget.ctl(),
                &PortfolioSpec::new(opts.portfolio),
                tel,
            );
            let spent = t0.elapsed();
            times.verify += spent;
            tel.add_stage(Stage::Verify, spent);
            match verdict {
                VerifyOutcome::Equivalent => {}
                VerifyOutcome::Counterexample(cex) => {
                    let at = if cex.is_empty() {
                        "for all inputs".to_string()
                    } else {
                        format!("at {cex:?}")
                    };
                    return Err(EcoError::Unrectifiable(format!(
                        "output outside all target fanout cones differs {at}"
                    )));
                }
                VerifyOutcome::Unknown if governed => {
                    let diag = if budget.expired() {
                        ClusterDiagnosis::Deadline
                    } else {
                        ClusterDiagnosis::BudgetExhausted
                    };
                    tel.event(
                        Stage::Verify,
                        "run_degraded",
                        "verification budget exhausted on untouched outputs".to_string(),
                    );
                    return Ok(self.degrade_all_clusters(
                        &ws,
                        &clustering.clusters,
                        diag,
                        "verification budget exhausted on untouched outputs",
                        times,
                        tel,
                    ));
                }
                VerifyOutcome::Unknown => {
                    return Err(EcoError::ResourceLimit(
                        "verification budget (untouched outputs)".into(),
                    ))
                }
            }
        }

        // Stages 1+3+4: per-cluster FRAIG, localization, and patch
        // generation against isolated sub-workspaces — in parallel when
        // `jobs` allows — then a deterministic merge in cluster order.
        let t0 = Instant::now();
        let pg_opts = PatchGenOptions {
            kind: opts.initial_patch,
            conflict_budget: opts.synth_budget,
            ..Default::default()
        };
        let clusters = &clustering.clusters;
        let jobs = resolve_jobs(opts.jobs, clusters.len());
        tel.add_clusters(clusters.len() as u64);
        tel.set_jobs(jobs as u64);
        type ClusterSlot = Result<ClusterOutcome, ClusterDiagnosis>;
        let outcomes: Vec<ClusterSlot> = if jobs <= 1 {
            clusters
                .iter()
                .map(|c| self.rectify_cluster_governed(&ws, c, localization, &pg_opts, budget, tel))
                .collect()
        } else {
            let slots: Vec<Mutex<Option<ClusterSlot>>> =
                clusters.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= clusters.len() {
                            break;
                        }
                        let out = self.rectify_cluster_governed(
                            &ws,
                            &clusters[i],
                            localization,
                            &pg_opts,
                            budget,
                            tel,
                        );
                        *slots[i].lock().expect("cluster slot") = Some(out);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("cluster slot lock")
                        .expect("worker filled every slot")
                })
                .collect()
        };
        let mut patches: Vec<PatchFn> = Vec::new();
        let mut interpolation_fallbacks = 0;
        let mut cluster_reports: Vec<ClusterReport> = Vec::with_capacity(clusters.len());
        let mut failed = 0usize;
        for (cluster, out) in clusters.iter().zip(outcomes) {
            let targets: Vec<String> = cluster
                .targets
                .iter()
                .map(|&k| self.instance.targets[k].clone())
                .collect();
            match out {
                Ok(out) => {
                    times.fraig += out.fraig_time;
                    interpolation_fallbacks += out.group.fallbacks;
                    patches.extend(adopt_group(&mut ws, &out.sub, &out.group)?);
                    cluster_reports.push(ClusterReport {
                        targets,
                        diagnosis: ClusterDiagnosis::Patched,
                    });
                }
                Err(diagnosis) => {
                    failed += 1;
                    tel.event(
                        Stage::PatchGen,
                        "cluster_degraded",
                        format!("cluster [{}]: {diagnosis}", targets.join(", ")),
                    );
                    cluster_reports.push(ClusterReport { targets, diagnosis });
                }
            }
        }
        for report in &cluster_reports {
            tel.add_cluster_diagnosis(&report.diagnosis);
        }
        for &k in &clustering.dead_targets {
            patches.push(PatchFn {
                target: k,
                lit: Lit::FALSE,
                cut: Cut::default(),
            });
        }
        times.patchgen = t0.elapsed();
        tel.add_stage(Stage::PatchGen, times.patchgen);

        if failed > 0 {
            // Graceful degradation: report what completed; skip the
            // optimization and final-verification stages (their results
            // would describe an incomplete patch set anyway).
            let reason = format!("{failed} of {} clusters degraded", clusters.len());
            return Ok(AttemptOutcome::Degraded(self.assemble_partial(
                &ws,
                patches,
                cluster_reports,
                reason,
                times,
                tel,
            )));
        }

        // Stage 5: cost optimization.
        let t0 = Instant::now();
        let optimize_delta = if opts.optimize {
            let stats =
                optimize_patches_governed(&mut ws, &mut patches, &opts.optimize_opts, budget, tel);
            (stats.cost_before, stats.cost_after)
        } else {
            let c = total_cost(&ws, &patches);
            (c, c)
        };
        if opts.size_optimize {
            let _ =
                reduce_patch_sizes_governed(&mut ws, &mut patches, &opts.size_opts, budget, tel);
        }
        times.optimize = t0.elapsed();
        tel.add_stage(Stage::Optimize, times.optimize);

        // Stage 6: verification.
        let t0 = Instant::now();
        let map: HashMap<Var, Lit> = patches
            .iter()
            .map(|p| (ws.target_vars[p.target], p.lit))
            .collect();
        let f_outs = ws.f_outs.clone();
        let patched = ws.mgr.substitute(&f_outs, &map);
        let pairs: Vec<(Lit, Lit)> = patched.into_iter().zip(ws.g_outs.clone()).collect();
        let verdict = check_equivalence_portfolio(
            &mut ws.mgr,
            &pairs,
            budget.cap(opts.verify_budget),
            &budget.ctl(),
            &PortfolioSpec::new(opts.portfolio),
            tel,
        );
        let spent = t0.elapsed();
        times.verify += spent;
        tel.add_stage(Stage::Verify, spent);
        match verdict {
            VerifyOutcome::Equivalent => {}
            VerifyOutcome::Counterexample(cex) => return Ok(AttemptOutcome::Cex(cex)),
            VerifyOutcome::Unknown if governed => {
                tel.event(
                    Stage::Verify,
                    "run_degraded",
                    "final verification budget exhausted; patches are unverified".to_string(),
                );
                return Ok(AttemptOutcome::Degraded(self.assemble_partial(
                    &ws,
                    patches,
                    cluster_reports,
                    "final verification budget exhausted".to_string(),
                    times,
                    tel,
                )));
            }
            VerifyOutcome::Unknown => {
                return Err(EcoError::ResourceLimit("verification budget".into()))
            }
        }

        // Assemble the result: order patches by target index, extract the
        // combined patch AIG over the merged cut, prune unused inputs, and
        // FRAIG-reduce the patch itself.
        let result = tel.time(Stage::Assemble, || -> Result<EcoResult, EcoError> {
            let (target_patches, patch_aig, cost, size) =
                self.assemble_patches(&ws, &mut patches, tel)?;
            Ok(EcoResult {
                patches: target_patches,
                patch_aig,
                cost,
                size,
                stage_times: times,
                localization_fallback: false,
                interpolation_fallbacks,
                optimize_delta,
                telemetry: TelemetrySnapshot::default(),
            })
        })?;
        Ok(AttemptOutcome::Done(result))
    }

    /// Orders the patches by target index, extracts the combined patch AIG
    /// over the merged cut, prunes unused inputs, FRAIG-reduces the patch,
    /// and computes the cost/size summary. Shared by the complete and
    /// partial assembly paths.
    fn assemble_patches(
        &self,
        ws: &Workspace,
        patches: &mut [PatchFn],
        tel: &Telemetry,
    ) -> Result<(Vec<TargetPatch>, Aig, u64, usize), EcoError> {
        patches.sort_by_key(|p| p.target);
        let merged = Cut::merge(patches.iter().map(|p| &p.cut));
        let roots: Vec<Lit> = patches.iter().map(|p| p.lit).collect();
        let (mut patch_aig, outs) = extract_patch_aig(&ws.mgr, &ws.target_vars, &roots, &merged)?;
        for (p, &o) in patches.iter().zip(&outs) {
            patch_aig.add_output(self.instance.targets[p.target].clone(), o);
        }
        let patch_aig = prune_unused_inputs(&patch_aig);
        let patch_aig = {
            let (classes, sweep) = fraig_classes_stats(&patch_aig, &self.options.fraig);
            tel.record_sweep(&sweep);
            fraig_reduce(&patch_aig, &classes).compact()
        };

        let cost = total_cost(ws, patches);
        let all_roots: Vec<Lit> = patch_aig.outputs().iter().map(|o| o.lit).collect();
        let size = patch_aig.count_cone_ands(&all_roots);
        let target_patches: Vec<TargetPatch> = patch_aig
            .outputs()
            .iter()
            .map(|o| TargetPatch {
                target: o.name.clone(),
                base: patch_aig
                    .support(&[o.lit])
                    .iter()
                    .map(|&v| {
                        patch_aig
                            .input_name(patch_aig.input_pos(v).expect("support is inputs"))
                            .to_owned()
                    })
                    .collect(),
                size: patch_aig.count_cone_ands(&[o.lit]),
            })
            .collect();
        Ok((target_patches, patch_aig, cost, size))
    }

    /// Builds a [`PartialResult`] from whatever patches completed. Assembly
    /// failures degrade further to an empty patch set (recorded as a
    /// telemetry event) — a partial result never turns into a hard error.
    fn assemble_partial(
        &self,
        ws: &Workspace,
        mut patches: Vec<PatchFn>,
        clusters: Vec<ClusterReport>,
        reason: String,
        times: StageTimes,
        tel: &Telemetry,
    ) -> PartialResult {
        let assembled = tel.time(Stage::Assemble, || {
            self.assemble_patches(ws, &mut patches, tel)
        });
        let (target_patches, patch_aig, cost, size) = match assembled {
            Ok(parts) => parts,
            Err(e) => {
                tel.event(
                    Stage::Assemble,
                    "partial_assembly_failed",
                    format!("completed patches could not be assembled: {e}"),
                );
                (Vec::new(), Aig::new(), 0, 0)
            }
        };
        PartialResult {
            reason,
            patches: target_patches,
            patch_aig,
            cost,
            size,
            clusters,
            stage_times: times,
            telemetry: TelemetrySnapshot::default(),
        }
    }

    /// Degrades every cluster with the same diagnosis (used when a serial
    /// stage ahead of patch generation hits a limit).
    fn degrade_all_clusters(
        &self,
        ws: &Workspace,
        clusters: &[TargetCluster],
        diagnosis: ClusterDiagnosis,
        reason: &str,
        times: StageTimes,
        tel: &Telemetry,
    ) -> AttemptOutcome {
        let reports: Vec<ClusterReport> = clusters
            .iter()
            .map(|c| ClusterReport {
                targets: c
                    .targets
                    .iter()
                    .map(|&k| self.instance.targets[k].clone())
                    .collect(),
                diagnosis: diagnosis.clone(),
            })
            .collect();
        for report in &reports {
            tel.add_cluster_diagnosis(&report.diagnosis);
        }
        AttemptOutcome::Degraded(self.assemble_partial(
            ws,
            Vec::new(),
            reports,
            reason.to_string(),
            times,
            tel,
        ))
    }
}

/// Best-effort human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Resolves the effective worker count: `0` = available parallelism,
/// clamped to the cluster count (and at least 1).
fn resolve_jobs(requested: usize, clusters: usize) -> usize {
    let jobs = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    jobs.min(clusters).max(1)
}

/// Compact, human-readable counterexample summary (first few assignments).
fn cex_summary(cex: &[(String, bool)]) -> String {
    if cex.is_empty() {
        return "counterexample with no free inputs".to_string();
    }
    let shown: Vec<String> = cex
        .iter()
        .take(8)
        .map(|(n, v)| format!("{n}={}", u8::from(*v)))
        .collect();
    let extra = cex.len().saturating_sub(8);
    if extra > 0 {
        format!("cex {} …(+{extra} more)", shown.join(" "))
    } else {
        format!("cex {}", shown.join(" "))
    }
}

/// Imports one cluster's generated patches from its sub-workspace into the
/// shared manager, relocating each patch cut alongside via the import
/// translation cache. Purely structural, so merging in cluster order makes
/// the parallel path byte-identical to the sequential one.
fn adopt_group(
    ws: &mut Workspace,
    sub: &Workspace,
    group: &GroupPatches,
) -> Result<Vec<PatchFn>, EcoError> {
    let mut imap: HashMap<Var, Lit> = HashMap::new();
    for ((_, sl), (_, ml)) in sub.x.iter().zip(&ws.x) {
        imap.insert(sl.var(), *ml);
    }
    for (&sv, &mv) in sub.target_vars.iter().zip(&ws.target_vars) {
        imap.insert(sv, mv.pos());
    }
    let roots: Vec<Lit> = group.patches.iter().map(|p| p.lit).collect();
    let (lits, cache) = ws.mgr.import_map(&sub.mgr, &roots, &imap)?;
    Ok(group
        .patches
        .iter()
        .zip(&lits)
        .map(|(p, &lit)| PatchFn {
            target: p.target,
            lit,
            cut: translate_cut(ws, &p.cut, &cache),
        })
        .collect())
}

/// Re-expresses a sub-workspace cut over the shared manager: signal
/// literals relocate by candidate index (or `X` input name), frontier
/// nodes through the import cache with phase composition. Entries are
/// visited in variable order so collisions resolve deterministically.
fn translate_cut(ws: &Workspace, sub_cut: &Cut, cache: &HashMap<Var, Lit>) -> Cut {
    let mut out = Cut {
        signals: Vec::with_capacity(sub_cut.signals.len()),
        node_map: HashMap::new(),
        targets: sub_cut.targets.clone(),
    };
    for s in &sub_cut.signals {
        let lit = match s.cand_idx {
            Some(i) => ws.cands[i].lit,
            None => ws.x_lit(&s.name).expect("cut signal is an X input"),
        };
        out.signals.push(CutSignal {
            name: s.name.clone(),
            lit,
            weight: s.weight,
            cand_idx: s.cand_idx,
        });
    }
    let mut entries: Vec<(Var, (usize, bool))> =
        sub_cut.node_map.iter().map(|(&v, &e)| (v, e)).collect();
    entries.sort_unstable_by_key(|(v, _)| v.index());
    for (v, (sig, phase)) in entries {
        // Frontier nodes outside the imported patch cones have no cache
        // entry; they cannot be reached from the patch either, so they are
        // safe to drop.
        if let Some(&l) = cache.get(&v) {
            out.node_map
                .entry(l.var())
                .or_insert((sig, phase ^ l.is_complement()));
        }
    }
    out
}

/// Rebuilds `aig` keeping only inputs in the support of its outputs.
fn prune_unused_inputs(aig: &Aig) -> Aig {
    let roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    let used = aig.support(&roots);
    let mut new = Aig::new();
    let mut map: HashMap<Var, Lit> = HashMap::new();
    for &v in &used {
        let pos = aig.input_pos(v).expect("support is inputs");
        map.insert(v, new.add_input(aig.input_name(pos).to_owned()));
    }
    let outs = new
        .import(aig, &roots, &map)
        .expect("support covers every cone input");
    for (o, &lit) in aig.outputs().iter().zip(&outs) {
        new.add_output(o.name.clone(), lit);
    }
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{parse_verilog, WeightTable};

    fn instance(
        faulty: &str,
        golden: &str,
        targets: &[&str],
        weights: &WeightTable,
    ) -> EcoInstance {
        EcoInstance::from_netlists(
            "engine-test",
            &parse_verilog(faulty).expect("faulty"),
            &parse_verilog(golden).expect("golden"),
            targets.iter().map(|s| s.to_string()).collect(),
            weights,
        )
        .expect("instance")
    }

    /// Exhaustively check that splicing the patch AIG into the faulty
    /// circuit matches the golden circuit.
    fn check_result(inst: &EcoInstance, result: &EcoResult) {
        let x_names = inst.x_names();
        assert!(x_names.len() <= 10, "exhaustive check needs few inputs");
        // Evaluate golden directly; evaluate faulty with targets driven by
        // the patch AIG, whose inputs are faulty nets (which in these tests
        // are all X inputs or computable nets — we re-elaborate via the
        // workspace instead for generality).
        let ws = Workspace::new(inst);
        let mut mgr = ws.mgr.clone();
        // Patch outputs imported over the manager: patch input names are
        // faulty net names = candidate names.
        let mut imap: HashMap<Var, Lit> = HashMap::new();
        for pos in 0..result.patch_aig.num_inputs() {
            let name = result.patch_aig.input_name(pos);
            let lit = ws
                .cands
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.lit)
                .or_else(|| ws.x_lit(name))
                .ok_or_else(|| EcoError::UnknownPatchInput(name.to_owned()))
                .expect("engine emitted a patch over existing nets");
            imap.insert(result.patch_aig.input_var(pos), lit);
        }
        let proots: Vec<Lit> = result.patch_aig.outputs().iter().map(|o| o.lit).collect();
        let plits = mgr
            .import(&result.patch_aig, &proots, &imap)
            .expect("patch inputs are fully mapped");
        let tmap: HashMap<Var, Lit> = result
            .patch_aig
            .outputs()
            .iter()
            .zip(&plits)
            .map(|(o, &l)| {
                let k = inst
                    .targets
                    .iter()
                    .position(|t| *t == o.name)
                    .expect("target");
                (ws.target_vars[k], l)
            })
            .collect();
        let patched = mgr.substitute(&ws.f_outs.clone(), &tmap);
        mgr.clear_outputs();
        for (j, (&p, &g)) in patched.iter().zip(&ws.g_outs).enumerate() {
            let m = mgr.xor(p, g);
            mgr.add_output(format!("m{j}"), m);
        }
        let n = mgr.num_inputs();
        for bits in 0u64..1 << n {
            let vals: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert!(
                mgr.eval(&vals).iter().all(|&b| !b),
                "patched != golden at {vals:?}"
            );
        }
    }

    #[test]
    fn single_target_end_to_end() {
        let inst = instance(
            "module f (a, b, c, t, y); input a, b, c, t; output y; \
             xor g1 (y, t, c); endmodule",
            "module g (a, b, c, y); input a, b, c; output y; \
             wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
            &["t"],
            &WeightTable::new(3),
        );
        let result = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        assert_eq!(result.patches.len(), 1);
        assert!(result.cost > 0);
        assert!(result.size >= 1);
        check_result(&inst, &result);
    }

    #[test]
    fn multi_target_end_to_end() {
        let inst = instance(
            "module f (a, b, c, t1, t2, y, z); input a, b, c, t1, t2; output y, z; \
             or g1 (y, t1, t2); and g2 (z, t2, c); endmodule",
            "module g (a, b, c, y, z); input a, b, c; output y, z; \
             wire w1, w2; and g1 (w1, a, b); xor g2 (w2, a, c); \
             or g3 (y, w1, w2); and g4 (z, w2, c); endmodule",
            &["t1", "t2"],
            &WeightTable::new(2),
        );
        let result = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        assert_eq!(result.patches.len(), 2);
        check_result(&inst, &result);
    }

    #[test]
    fn localization_reuses_existing_net() {
        // The needed function exists as cheap net `w`; PIs cost 50.
        let mut weights = WeightTable::new(50);
        weights.set("w", 2);
        let inst = instance(
            "module f (a, b, c, t, y, u); input a, b, c, t; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, t, c); buf g2 (u, w); endmodule",
            "module g (a, b, c, y, u); input a, b, c; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, w, c); buf g2 (u, w); endmodule",
            &["t"],
            &weights,
        );
        let result = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        check_result(&inst, &result);
        assert_eq!(result.cost, 2, "patch should tap w: {:?}", result.patches);
        assert_eq!(result.patches[0].base, vec!["w"]);
        // Baseline (PI-only) must pay for the inputs instead.
        let baseline = EcoEngine::new(inst.clone(), EcoOptions::baseline())
            .run()
            .expect("rectifiable");
        check_result(&inst, &baseline);
        assert!(baseline.cost > result.cost);
    }

    #[test]
    fn unrectifiable_is_reported() {
        // Output z does not depend on the target and differs from golden.
        let inst = instance(
            "module f (a, t, y, z); input a, t; output y, z; \
             buf g1 (y, t); buf g2 (z, a); endmodule",
            "module g (a, y, z); input a; output y, z; \
             buf g1 (y, a); not g2 (z, a); endmodule",
            &["t"],
            &WeightTable::new(1),
        );
        let err = EcoEngine::new(inst, EcoOptions::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, EcoError::Unrectifiable(_)), "{err}");
    }

    #[test]
    fn dead_target_gets_constant_patch() {
        let inst = instance(
            "module f (a, t1, t2, y); input a, t1, t2; output y; \
             buf g1 (y, t1); endmodule",
            "module g (a, y); input a; output y; not g1 (y, a); endmodule",
            &["t1", "t2"],
            &WeightTable::new(1),
        );
        let result = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        let t2 = result
            .patches
            .iter()
            .find(|p| p.target == "t2")
            .expect("t2");
        assert!(t2.base.is_empty());
        assert_eq!(t2.size, 0);
        check_result(&inst, &result);
    }

    #[test]
    fn stage_times_are_recorded() {
        let inst = instance(
            "module f (a, t, y); input a, t; output y; and g1 (y, a, t); endmodule",
            "module g (a, y); input a; output y; buf g1 (y, a); endmodule",
            &["t"],
            &WeightTable::new(1),
        );
        let result = EcoEngine::new(inst, EcoOptions::default())
            .run()
            .expect("ok");
        // total() sums the stages; just ensure it is consistent.
        assert!(result.stage_times.total() >= result.stage_times.patchgen);
        // The telemetry compat view mirrors the patchgen slot order.
        assert!(result.telemetry.stage_nanos(Stage::PatchGen) > 0);
        assert!(result.telemetry.clusters >= 1);
        assert!(result.telemetry.jobs >= 1);
    }

    /// The two-cluster instance used by the governor tests below.
    fn two_cluster_instance() -> EcoInstance {
        instance(
            "module f (a, b, c, d, t1, t2, y, z); input a, b, c, d, t1, t2; output y, z; \
             xor g1 (y, t1, c); or g2 (z, t2, d); endmodule",
            "module g (a, b, c, d, y, z); input a, b, c, d; output y, z; \
             wire w1, w2; and g1 (w1, a, b); xor g2 (y, w1, c); \
             xor g3 (w2, a, d); or g4 (z, w2, d); endmodule",
            &["t1", "t2"],
            &WeightTable::new(2),
        )
    }

    #[test]
    fn zero_conflict_budget_degrades_to_partial() {
        let options = EcoOptions {
            budget: BudgetOptions {
                timeout: None,
                cluster_conflicts: Some(0),
            },
            ..Default::default()
        };
        match EcoEngine::new(two_cluster_instance(), options)
            .run_governed()
            .expect("degradation is not a hard error")
        {
            EcoOutcome::Partial(p) => {
                assert_eq!(p.clusters.len(), 2, "{p:?}");
                for c in &p.clusters {
                    assert_eq!(c.diagnosis, ClusterDiagnosis::BudgetExhausted, "{c:?}");
                }
                assert_eq!(p.telemetry.clusters_budget_exhausted, 2);
                assert_eq!(p.telemetry.clusters_patched, 0);
                assert!(p.patches.is_empty());
            }
            EcoOutcome::Complete(r) => panic!("expected partial, got {r:?}"),
        }
    }

    #[test]
    fn zero_timeout_reports_deadline_for_every_cluster() {
        let options = EcoOptions {
            budget: BudgetOptions {
                timeout: Some(Duration::ZERO),
                cluster_conflicts: None,
            },
            ..Default::default()
        };
        match EcoEngine::new(two_cluster_instance(), options)
            .run_governed()
            .expect("degradation is not a hard error")
        {
            EcoOutcome::Partial(p) => {
                assert_eq!(p.clusters.len(), 2);
                for c in &p.clusters {
                    assert_eq!(c.diagnosis, ClusterDiagnosis::Deadline, "{c:?}");
                }
                assert_eq!(p.telemetry.clusters_deadline, 2);
                assert!(p.reason.contains("deadline"), "{}", p.reason);
            }
            EcoOutcome::Complete(r) => panic!("expected partial, got {r:?}"),
        }
    }

    /// A generous conflict allowance completes, and the governed result is
    /// byte-identical to the ungoverned one.
    #[test]
    fn generous_budget_matches_ungoverned_run() {
        let inst = two_cluster_instance();
        let plain = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        let options = EcoOptions {
            budget: BudgetOptions {
                timeout: None,
                cluster_conflicts: Some(1 << 30),
            },
            ..Default::default()
        };
        match EcoEngine::new(inst, options)
            .run_governed()
            .expect("rectifiable")
        {
            EcoOutcome::Complete(governed) => {
                assert_eq!(governed.cost, plain.cost);
                assert_eq!(governed.size, plain.size);
                assert_eq!(
                    format!("{:?}", governed.patch_aig),
                    format!("{:?}", plain.patch_aig)
                );
                assert_eq!(governed.telemetry.clusters_patched, 2);
            }
            EcoOutcome::Partial(p) => panic!("expected complete, got partial: {}", p.reason),
        }
    }

    /// Two independent single-output clusters: any `jobs` value must give
    /// byte-identical patches, costs, and sizes.
    #[test]
    fn parallel_jobs_match_sequential() {
        let inst = instance(
            "module f (a, b, c, d, t1, t2, y, z); input a, b, c, d, t1, t2; output y, z; \
             xor g1 (y, t1, c); or g2 (z, t2, d); endmodule",
            "module g (a, b, c, d, y, z); input a, b, c, d; output y, z; \
             wire w1, w2; and g1 (w1, a, b); xor g2 (y, w1, c); \
             xor g3 (w2, a, d); or g4 (z, w2, d); endmodule",
            &["t1", "t2"],
            &WeightTable::new(2),
        );
        let run = |jobs: usize| {
            EcoEngine::new(
                inst.clone(),
                EcoOptions {
                    jobs,
                    ..Default::default()
                },
            )
            .run()
            .expect("rectifiable")
        };
        let seq = run(1);
        let par = run(4);
        check_result(&inst, &seq);
        assert_eq!(seq.cost, par.cost);
        assert_eq!(seq.size, par.size);
        for (a, b) in seq.patches.iter().zip(&par.patches) {
            assert_eq!(a.target, b.target);
            assert_eq!(a.base, b.base, "base sets differ for {}", a.target);
            assert_eq!(a.size, b.size);
        }
        assert_eq!(
            format!("{:?}", seq.patch_aig),
            format!("{:?}", par.patch_aig),
            "patch AIGs must be byte-identical"
        );
    }
}
