//! Conversion between gate-level netlists and AIGs.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use eco_aig::{Aig, Lit, Var};

use crate::ast::{Gate, GateKind, NetRef, Netlist};

/// Error produced when a netlist cannot be elaborated into an AIG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElaborateError {
    /// A net is driven by more than one gate.
    MultipleDrivers(String),
    /// A referenced net is neither an input nor driven by any gate.
    Undriven(String),
    /// The gates form a combinational cycle through the named net.
    CombinationalCycle(String),
    /// An output is not declared/driven.
    UndrivenOutput(String),
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            ElaborateError::Undriven(n) => write!(f, "net `{n}` is referenced but never driven"),
            ElaborateError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through net `{n}`")
            }
            ElaborateError::UndrivenOutput(n) => write!(f, "output `{n}` is not driven"),
        }
    }
}

impl Error for ElaborateError {}

/// Elaborated netlist: the AIG plus the net-name → literal map.
#[derive(Clone, Debug)]
pub struct Elaboration {
    /// The resulting AIG (inputs in netlist declaration order, outputs in
    /// netlist output order).
    pub aig: Aig,
    /// Literal of every named net.
    pub net_lits: HashMap<String, Lit>,
}

/// Builds an AIG from a gate-level netlist.
///
/// # Errors
///
/// See [`ElaborateError`].
///
/// # Examples
///
/// ```
/// let n = eco_netlist::parse_verilog(
///     "module m (a, b, y); input a, b; output y; nand g (y, a, b); endmodule",
/// )?;
/// let e = eco_netlist::elaborate(&n)?;
/// assert_eq!(e.aig.eval(&[true, true]), vec![false]);
/// assert_eq!(e.aig.eval(&[true, false]), vec![true]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn elaborate(netlist: &Netlist) -> Result<Elaboration, ElaborateError> {
    let mut aig = Aig::new();
    let mut net_lits: HashMap<String, Lit> = HashMap::new();
    for name in &netlist.inputs {
        let lit = aig.add_input(name.clone());
        if net_lits.insert(name.clone(), lit).is_some() {
            return Err(ElaborateError::MultipleDrivers(name.clone()));
        }
    }

    // Driver map: net -> gate index.
    let mut driver: HashMap<&str, usize> = HashMap::new();
    for (i, g) in netlist.gates.iter().enumerate() {
        if net_lits.contains_key(&g.output) || driver.insert(&g.output, i).is_some() {
            return Err(ElaborateError::MultipleDrivers(g.output.clone()));
        }
    }

    // Iterative DFS elaboration with cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<usize, Mark> = HashMap::new();
    // Elaborate every gate — including dangling logic not reaching any
    // output. ECO flows rely on this: the faulty design keeps obsolete
    // "spare" logic around, and those nets must exist as patch candidates.
    let mut roots: Vec<usize> = Vec::with_capacity(netlist.gates.len());
    for out in &netlist.outputs {
        if net_lits.contains_key(out.as_str()) {
            continue;
        }
        roots.push(
            *driver
                .get(out.as_str())
                .ok_or_else(|| ElaborateError::UndrivenOutput(out.clone()))?,
        );
    }
    roots.extend(0..netlist.gates.len());
    for start in roots {
        let mut stack: Vec<usize> = vec![start];
        while let Some(&gi) = stack.last() {
            match marks.get(&gi) {
                Some(Mark::Done) => {
                    stack.pop();
                    continue;
                }
                Some(Mark::Visiting) => {
                    // All dependencies resolved (or cycle).
                    let gate = &netlist.gates[gi];
                    let mut ready = true;
                    for input in &gate.inputs {
                        if let NetRef::Named(n) = input {
                            if !net_lits.contains_key(n) {
                                ready = false;
                                break;
                            }
                        }
                    }
                    if ready {
                        let lit = build_gate(&mut aig, gate, &net_lits);
                        net_lits.insert(gate.output.clone(), lit);
                        marks.insert(gi, Mark::Done);
                        stack.pop();
                    } else {
                        return Err(ElaborateError::CombinationalCycle(gate.output.clone()));
                    }
                }
                None => {
                    marks.insert(gi, Mark::Visiting);
                    let gate = &netlist.gates[gi];
                    for input in &gate.inputs {
                        let n = match input {
                            NetRef::Named(n) => n,
                            NetRef::Const(_) => continue,
                        };
                        if net_lits.contains_key(n) {
                            continue;
                        }
                        let &di = driver
                            .get(n.as_str())
                            .ok_or_else(|| ElaborateError::Undriven(n.clone()))?;
                        match marks.get(&di) {
                            Some(Mark::Visiting) => {
                                return Err(ElaborateError::CombinationalCycle(n.clone()))
                            }
                            Some(Mark::Done) => {}
                            None => stack.push(di),
                        }
                    }
                }
            }
        }
    }

    for out in &netlist.outputs {
        let lit = net_lits[out.as_str()];
        aig.add_output(out.clone(), lit);
    }
    Ok(Elaboration { aig, net_lits })
}

fn build_gate(aig: &mut Aig, gate: &Gate, net_lits: &HashMap<String, Lit>) -> Lit {
    let ins: Vec<Lit> = gate
        .inputs
        .iter()
        .map(|r| match r {
            NetRef::Named(n) => net_lits[n.as_str()],
            NetRef::Const(false) => Lit::FALSE,
            NetRef::Const(true) => Lit::TRUE,
        })
        .collect();
    match gate.kind {
        GateKind::Buf => ins[0],
        GateKind::Not => !ins[0],
        GateKind::And => aig.and_many(&ins),
        GateKind::Nand => !aig.and_many(&ins),
        GateKind::Or => aig.or_many(&ins),
        GateKind::Nor => !aig.or_many(&ins),
        GateKind::Xor => aig.xor_many(&ins),
        GateKind::Xnor => !aig.xor_many(&ins),
    }
}

/// Converts an AIG back into a gate-level netlist (`and`/`not`/`buf`
/// primitives).
///
/// Internal nets are named `n<k>`; an inverter net for node `k` is
/// `n<k>_inv`. Inputs and outputs keep their AIG names.
pub fn netlist_from_aig(aig: &Aig, module_name: &str) -> Netlist {
    let mut nl = Netlist::new(module_name);
    nl.inputs = (0..aig.num_inputs())
        .map(|p| aig.input_name(p).to_owned())
        .collect();
    nl.outputs = aig.outputs().iter().map(|o| o.name.clone()).collect();

    let roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    let cone = aig.cone_vars(&roots);

    // Generated names (internal `n<k>`, `const0`, `_inv` wires) must not
    // collide with port names: a patch whose target is called `n8` would
    // otherwise get an internal wire `n8` double-driving the output.
    let mut taken: std::collections::HashSet<String> =
        nl.inputs.iter().chain(nl.outputs.iter()).cloned().collect();
    let uniquify = |base: String, taken: &mut std::collections::HashSet<String>| -> String {
        let mut name = base;
        while taken.contains(&name) {
            name.push('_');
        }
        taken.insert(name.clone());
        name
    };
    let mut name_of: HashMap<Var, String> = HashMap::new();
    for &v in &cone {
        let name = if let Some(pos) = aig.input_pos(v) {
            aig.input_name(pos).to_owned()
        } else if v == Var::CONST {
            uniquify("const0".to_string(), &mut taken)
        } else {
            uniquify(format!("n{}", v.index()), &mut taken)
        };
        name_of.insert(v, name);
    }

    let mut inv_emitted: HashMap<Var, String> = HashMap::new();

    // Emit AND gates in topological order; inverters on demand.
    let mut gates: Vec<Gate> = Vec::new();
    let mut wires: Vec<String> = Vec::new();
    let lit_net = |lit: Lit,
                   gates: &mut Vec<Gate>,
                   wires: &mut Vec<String>,
                   inv_emitted: &mut HashMap<Var, String>,
                   taken: &mut std::collections::HashSet<String>|
     -> NetRef {
        let v = lit.var();
        if v == Var::CONST {
            return NetRef::Const(lit.is_complement());
        }
        if !lit.is_complement() {
            return NetRef::Named(name_of[&v].clone());
        }
        if let Some(n) = inv_emitted.get(&v) {
            return NetRef::Named(n.clone());
        }
        let mut inv_name = format!("{}_inv", name_of[&v]);
        while taken.contains(&inv_name) {
            inv_name.push('_');
        }
        taken.insert(inv_name.clone());
        wires.push(inv_name.clone());
        gates.push(Gate {
            kind: GateKind::Not,
            name: None,
            output: inv_name.clone(),
            inputs: vec![NetRef::Named(name_of[&v].clone())],
        });
        inv_emitted.insert(v, inv_name.clone());
        NetRef::Named(inv_name)
    };

    for &v in &cone {
        if let Some((fan0, fan1)) = aig.and_fanins(v) {
            let i0 = lit_net(fan0, &mut gates, &mut wires, &mut inv_emitted, &mut taken);
            let i1 = lit_net(fan1, &mut gates, &mut wires, &mut inv_emitted, &mut taken);
            let out = name_of[&v].clone();
            wires.push(out.clone());
            gates.push(Gate {
                kind: GateKind::And,
                name: None,
                output: out,
                inputs: vec![i0, i1],
            });
        }
    }

    // Output drivers: buf/not from the driving net.
    for out in aig.outputs() {
        let v = out.lit.var();
        let (kind, src) = if v == Var::CONST {
            (GateKind::Buf, NetRef::Const(out.lit.is_complement()))
        } else if out.lit.is_complement() {
            (GateKind::Not, NetRef::Named(name_of[&v].clone()))
        } else {
            (GateKind::Buf, NetRef::Named(name_of[&v].clone()))
        };
        gates.push(Gate {
            kind,
            name: None,
            output: out.name.clone(),
            inputs: vec![src],
        });
    }

    // Internal AND output nets shadowing output names would double-drive;
    // the `n<k>` naming scheme avoids collisions with user nets as long as
    // user nets don't use that scheme for other nodes — acceptable for
    // generated netlists.
    nl.wires = wires;
    nl.gates = gates;
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_verilog;

    #[test]
    fn elaborate_out_of_order_gates() {
        // g2 uses w1 which is defined later by g1.
        let src = "module m (a, b, y); input a, b; output y; \
                   xor g2 (y, w1, b); wire w1; and g1 (w1, a, b); endmodule";
        let e = elaborate(&parse_verilog(src).expect("parse")).expect("elaborate");
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let expect = (vals[0] && vals[1]) ^ vals[1];
            assert_eq!(e.aig.eval(&vals), vec![expect]);
        }
    }

    #[test]
    fn multi_input_gates_elaborate() {
        let src = "module m (a, b, c, y); input a, b, c; output y; \
                   nor g (y, a, b, c); endmodule";
        let e = elaborate(&parse_verilog(src).expect("parse")).expect("elaborate");
        assert_eq!(e.aig.eval(&[false, false, false]), vec![true]);
        assert_eq!(e.aig.eval(&[false, true, false]), vec![false]);
    }

    #[test]
    fn detects_multiple_drivers() {
        let src = "module m (a, y); input a; output y; buf g1 (y, a); not g2 (y, a); endmodule";
        let err = elaborate(&parse_verilog(src).expect("parse")).unwrap_err();
        assert_eq!(err, ElaborateError::MultipleDrivers("y".into()));
    }

    #[test]
    fn detects_undriven_nets() {
        let src = "module m (a, y); input a; output y; and g (y, a, ghost); endmodule";
        let err = elaborate(&parse_verilog(src).expect("parse")).unwrap_err();
        assert_eq!(err, ElaborateError::Undriven("ghost".into()));
    }

    #[test]
    fn detects_cycles() {
        let src = "module m (a, y); input a; output y; \
                   and g1 (y, a, w); and g2 (w, y, a); wire w; endmodule";
        let err = elaborate(&parse_verilog(src).expect("parse")).unwrap_err();
        assert!(matches!(err, ElaborateError::CombinationalCycle(_)));
    }

    #[test]
    fn detects_undriven_output() {
        let src = "module m (a, y); input a; output y; endmodule";
        let err = elaborate(&parse_verilog(src).expect("parse")).unwrap_err();
        assert_eq!(err, ElaborateError::UndrivenOutput("y".into()));
    }

    #[test]
    fn aig_netlist_round_trip_preserves_semantics() {
        let src = "module m (a, b, c, y, z); input a, b, c; output y, z; \
                   wire w1; and g1 (w1, a, b); xor g2 (y, w1, c); nor g3 (z, a, c); endmodule";
        let e = elaborate(&parse_verilog(src).expect("parse")).expect("elaborate");
        let nl2 = netlist_from_aig(&e.aig, "m2");
        let e2 = elaborate(&nl2).expect("re-elaborate");
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(e.aig.eval(&vals), e2.aig.eval(&vals), "bits {vals:?}");
        }
    }

    #[test]
    fn constant_output_round_trip() {
        let src = "module m (y); output y; assign y = 1'b1; endmodule";
        let e = elaborate(&parse_verilog(src).expect("parse")).expect("elaborate");
        assert_eq!(e.aig.eval(&[]), vec![true]);
        let nl2 = netlist_from_aig(&e.aig, "m2");
        let e2 = elaborate(&nl2).expect("re-elaborate");
        assert_eq!(e2.aig.eval(&[]), vec![true]);
    }

    /// Port names shaped like generated nets (an ECO target `n8`, an
    /// input `n2`) must not collide with the writer's internal `n<k>` /
    /// `_inv` wires: the emitted netlist re-elaborates (single driver
    /// per net) and keeps its semantics.
    #[test]
    fn generated_wire_names_skip_colliding_ports() {
        let mut aig = Aig::new();
        let a = aig.add_input("n20");
        let b = aig.add_input("x1");
        for k in 0..12 {
            let g = aig.and(a, if k % 2 == 0 { b } else { !b });
            let h = aig.and(!g, a);
            aig.add_output(format!("n{k}"), if k % 3 == 0 { !h } else { h });
        }
        let nl = netlist_from_aig(&aig, "patch");
        let e = elaborate(&nl).expect("no colliding drivers");
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval(&vals), e.aig.eval(&vals), "bits {vals:?}");
        }
    }

    #[test]
    fn output_feeding_another_gate() {
        // Output net `y` is also an internal fanin.
        let src = "module m (a, b, y, z); input a, b; output y, z; \
                   and g1 (y, a, b); not g2 (z, y); endmodule";
        let e = elaborate(&parse_verilog(src).expect("parse")).expect("elaborate");
        assert_eq!(e.aig.eval(&[true, true]), vec![true, false]);
    }
}
