//! DIMACS CNF parsing and writing (for tests, debugging, and interop).

use std::error::Error;
use std::fmt;

use crate::Lit;

/// Error produced when DIMACS text cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// A parsed DIMACS problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsProblem {
    /// Declared variable count.
    pub num_vars: usize,
    /// Clauses in order of appearance.
    pub clauses: Vec<Vec<Lit>>,
}

/// Parses DIMACS CNF text.
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on a malformed header, out-of-range
/// literals, non-integer tokens, or a clause missing its terminating `0`.
///
/// # Examples
///
/// ```
/// let text = "c demo\np cnf 2 2\n1 -2 0\n2 0\n";
/// let p = eco_sat::parse_dimacs(text)?;
/// assert_eq!(p.num_vars, 2);
/// assert_eq!(p.clauses.len(), 2);
/// # Ok::<(), eco_sat::ParseDimacsError>(())
/// ```
pub fn parse_dimacs(text: &str) -> Result<DimacsProblem, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    let err = |line: usize, message: &str| ParseDimacsError {
        line,
        message: message.to_string(),
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if num_vars.is_some() {
                return Err(err(line_no, "duplicate problem line"));
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(err(line_no, "expected `p cnf <vars> <clauses>`"));
            }
            let nv = parts[1]
                .parse::<usize>()
                .map_err(|_| err(line_no, "invalid variable count"))?;
            num_vars = Some(nv);
            continue;
        }
        let nv = num_vars.ok_or_else(|| err(line_no, "clause before problem line"))?;
        for tok in line.split_whitespace() {
            let val: i64 = tok.parse().map_err(|_| err(line_no, "non-integer token"))?;
            if val == 0 {
                clauses.push(std::mem::take(&mut current));
            } else {
                if val.unsigned_abs() as usize > nv {
                    return Err(err(line_no, "literal exceeds declared variable count"));
                }
                current.push(Lit::from_dimacs(val as i32));
            }
        }
    }
    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: text.lines().count(),
            message: "unterminated clause".to_string(),
        });
    }
    Ok(DimacsProblem {
        num_vars: num_vars.unwrap_or(0),
        clauses,
    })
}

/// Writes a clause list in DIMACS CNF format.
pub fn write_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    use fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "p cnf {} {}", num_vars, clauses.len());
    for c in clauses {
        for l in c {
            let _ = write!(s, "{} ", l.to_dimacs());
        }
        s.push_str("0\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solver;

    #[test]
    fn round_trip() {
        let text = "p cnf 3 2\n1 -2 0\n-1 3 0\n";
        let p = parse_dimacs(text).expect("parse");
        assert_eq!(p.num_vars, 3);
        assert_eq!(write_dimacs(p.num_vars, &p.clauses), text);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_dimacs("c hi\n\np cnf 1 1\nc mid\n1 0\n").expect("parse");
        assert_eq!(p.clauses.len(), 1);
    }

    #[test]
    fn multiline_clause() {
        let p = parse_dimacs("p cnf 3 1\n1 2\n3 0\n").expect("parse");
        assert_eq!(
            p.clauses,
            vec![vec![
                Lit::from_dimacs(1),
                Lit::from_dimacs(2),
                Lit::from_dimacs(3)
            ]]
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_dimacs("1 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\n2 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\nx 0\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\n1\n").is_err());
        assert!(parse_dimacs("p cnf 1 1\np cnf 1 1\n").is_err());
        assert!(parse_dimacs("p nfc 1 1\n").is_err());
    }

    #[test]
    fn parsed_problem_solves() {
        let p = parse_dimacs("p cnf 2 3\n1 2 0\n-1 0\n-2 1 0\n").expect("parse");
        let mut s = Solver::new();
        for _ in 0..p.num_vars {
            s.new_var();
        }
        for c in &p.clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(&[]), Some(false));
    }
}
