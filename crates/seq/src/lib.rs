#![warn(missing_docs)]
//! # eco-seq — sequential ECO over the combinational engine
//!
//! Everything the ECO flow needs to rectify latch-bearing designs:
//!
//! * [`SeqNetlist`] — a sequential netlist model: an [`eco_aig::Aig`]
//!   whose latch current states are ordinary inputs, plus [`Latch`]
//!   records (next-state literal, [`LatchInit`] reset value) and a
//!   name → literal map for every named net;
//! * parsers/writers for BTOR2 ([`parse_btor2`] / [`write_btor2`]) and
//!   latch-BLIF ([`parse_blif_seq`] / [`write_blif_seq`], re-exported
//!   from `eco-netlist`), joining the sequential AIGER support in
//!   `eco-aig`;
//! * a deterministic k-frame unroller ([`unroll`]) expanding a design
//!   into the combinational AIG with frame-indexed net names (`n@f`),
//!   kept for fold-back;
//! * [`SeqEcoEngine`] — runs the existing cost-aware combinational flow
//!   on the unrolled miter, folds the chosen frame's patch back into a
//!   single sequential patch, and proves the patched design equivalent
//!   to golden with a fresh k-frame unrolled SAT miter under the
//!   governor;
//! * an any-to-any format [`hub`] (`.v`, `.blif`, `.aag`, `.aig`,
//!   `.btor2`, export-only `.cnf`) behind typed errors, the engine room
//!   of `eco-convert`.

mod btor2;
mod engine;
pub mod hub;
mod netlist;
mod unroll;

pub use crate::btor2::{parse_btor2, write_btor2, ParseBtor2Error};
pub use crate::engine::{SeqEcoEngine, SeqEcoError, SeqEcoOptions, SeqEcoResult};
pub use crate::hub::{read_design, write_design, Format, HubError};
pub use crate::netlist::{Latch, SeqError, SeqNetlist};
pub use crate::unroll::{unroll, unroll_miter, Unrolled};
pub use eco_netlist::{parse_blif_seq, write_blif_seq, LatchInit};
