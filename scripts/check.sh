#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 test suite.
# Run from anywhere; operates on the workspace root.
#
# --bench-smoke additionally runs the simulation and FRAIG-sweep benches
# with a single sample each, so hot-path regressions (a bench that panics,
# an accidental O(n^2) blowup) fail fast without the cost of a real
# measurement run.
#
# --fuzz-smoke additionally replays the tests/corpus regression set and
# runs a short differential fuzzing campaign (200 fixed-seed cases with
# shrinking) through the eco-fuzz binary; any oracle failure fails the
# gate with the shrunk case printed.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_smoke=0
fuzz_smoke=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    --fuzz-smoke) fuzz_smoke=1 ;;
    *) echo "usage: $0 [--bench-smoke] [--fuzz-smoke]" >&2; exit 2 ;;
  esac
done

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q --workspace

if [ "$bench_smoke" -eq 1 ]; then
  echo "== bench smoke (1 sample): sim_throughput"
  ECO_BENCH_SAMPLES=1 cargo bench -p eco-bench --bench sim_throughput
  echo "== bench smoke (1 sample): fraig_sweep"
  ECO_BENCH_SAMPLES=1 cargo bench -p eco-bench --bench fraig_sweep
fi

if [ "$fuzz_smoke" -eq 1 ]; then
  echo "== fuzz smoke: corpus replay"
  target/release/eco-fuzz --replay tests/corpus
  echo "== fuzz smoke: 200-case campaign (seed 1)"
  target/release/eco-fuzz --iters 200 --seed 1 --shrink
fi

echo "all checks passed"
