//! Structural 128-bit fingerprints for whole AIGs.
//!
//! The simulation engine fingerprints *values* ([`crate::SimVectors::fingerprint`]);
//! this module fingerprints *structure*: a [`FpHasher`] absorbs the exact
//! node list, input/output names, and output literals of an [`Aig`], so
//! two managers hash equal iff they were built identically (up to hash
//! collision). Every fingerprint comes as an independent pair
//! `(key, check)` — two 128-bit digests over the same stream with
//! unrelated seeds — so a consumer that indexes by `key` can detect
//! key collisions (and most cache poisoning) by comparing `check`.

use crate::aig::Aig;
use crate::node::Node;

/// Seeds for the primary (`key`) digest lanes.
const KEY_SEED: (u64, u64) = (0x8f0c_95d6_3b7a_11c5, 0xcbf2_9ce4_8422_2325);
/// Seeds for the independent (`check`) digest lanes.
const CHECK_SEED: (u64, u64) = (0x2545_f491_4f6c_dd1d, 0x100_0000_01b3);

/// SplitMix64 finalizer (same mixer the simulation fingerprint uses).
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incremental dual-digest hasher over a stream of words and byte
/// strings. Both digests absorb the identical stream; they differ only in
/// seed and per-word mixing, so they fail independently.
#[derive(Clone, Debug)]
pub struct FpHasher {
    k0: u64,
    k1: u64,
    c0: u64,
    c1: u64,
}

impl Default for FpHasher {
    fn default() -> Self {
        FpHasher::new()
    }
}

impl FpHasher {
    /// A fresh hasher with the module's fixed seeds.
    pub fn new() -> Self {
        FpHasher {
            k0: KEY_SEED.0,
            k1: KEY_SEED.1,
            c0: CHECK_SEED.0,
            c1: CHECK_SEED.1,
        }
    }

    /// Absorbs one word into all four lanes.
    pub fn word(&mut self, w: u64) {
        self.k0 = mix64(self.k0 ^ w);
        self.k1 = self
            .k1
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(w.rotate_left(17));
        self.c0 = mix64(self.c0.wrapping_add(w).rotate_left(23));
        self.c1 = (self.c1 ^ w.wrapping_mul(0xff51_afd7_ed55_8ccd)).rotate_left(31);
    }

    /// Absorbs a length-prefixed byte string (so `"ab","c"` and
    /// `"a","bc"` hash differently).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.word(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.word(u64::from_le_bytes(w));
        }
    }

    /// Absorbs a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Finalizes into the independent `(key, check)` digest pair.
    pub fn finish(&self) -> (u128, u128) {
        let key = (u128::from(mix64(self.k0)) << 64) | u128::from(mix64(self.k1 ^ self.k0));
        let check = (u128::from(mix64(self.c0)) << 64) | u128::from(mix64(self.c1 ^ self.c0));
        (key, check)
    }
}

impl Aig {
    /// Dual 128-bit digest of this manager's exact structure: node kinds
    /// and fanin literals in variable order, input names in position
    /// order, and outputs as `(name, literal)` pairs.
    ///
    /// Structurally identical managers (same build sequence) produce the
    /// same digests; any difference in a node, a name, or an output
    /// changes both with overwhelming probability. This is the cache key
    /// primitive of the cross-job memo cache: indexing by `key` and
    /// comparing `check` on lookup makes a key collision detectable.
    pub fn structural_fingerprint(&self) -> (u128, u128) {
        let mut h = FpHasher::new();
        h.word(self.len() as u64);
        for (_, node) in self.iter_nodes() {
            match node {
                Node::Constant => h.word(1),
                Node::Input { pos } => {
                    h.word(2);
                    h.word(u64::from(pos));
                }
                Node::And { fan0, fan1 } => {
                    h.word(3);
                    h.word(u64::from(fan0.code()));
                    h.word(u64::from(fan1.code()));
                }
            }
        }
        h.word(self.num_inputs() as u64);
        for pos in 0..self.num_inputs() {
            h.str(self.input_name(pos));
        }
        h.word(self.num_outputs() as u64);
        for o in self.outputs() {
            h.str(&o.name);
            h.word(u64::from(o.lit.code()));
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_builds_hash_equal() {
        let build = || {
            let mut m = Aig::new();
            let a = m.add_input("a");
            let b = m.add_input("b");
            let y = m.and(a, b);
            m.add_output("y", y);
            m
        };
        assert_eq!(
            build().structural_fingerprint(),
            build().structural_fingerprint()
        );
    }

    #[test]
    fn structure_names_and_outputs_all_matter() {
        let mut base = Aig::new();
        let a = base.add_input("a");
        let b = base.add_input("b");
        let y = base.and(a, b);
        base.add_output("y", y);
        let (key, check) = base.structural_fingerprint();

        // Different gate.
        let mut m = Aig::new();
        let a2 = m.add_input("a");
        let b2 = m.add_input("b");
        let y2 = m.or(a2, b2);
        m.add_output("y", y2);
        assert_ne!(m.structural_fingerprint().0, key);

        // Different input name only.
        let mut m = Aig::new();
        let a2 = m.add_input("a");
        let b2 = m.add_input("c");
        let y2 = m.and(a2, b2);
        m.add_output("y", y2);
        assert_ne!(m.structural_fingerprint().0, key);

        // Different output phase only.
        let mut m = Aig::new();
        let a2 = m.add_input("a");
        let b2 = m.add_input("b");
        let y2 = m.and(a2, b2);
        m.add_output("y", !y2);
        let (k3, c3) = m.structural_fingerprint();
        assert_ne!(k3, key);
        assert_ne!(c3, check);
    }

    #[test]
    fn key_and_check_are_independent() {
        // Over a spread of tiny variations, no key ever equals its own
        // check and all (key, check) pairs are distinct.
        let mut seen = std::collections::HashSet::new();
        for n in 1..40usize {
            let mut m = Aig::new();
            let mut prev = m.add_input("i0");
            for i in 1..=n {
                let x = m.add_input(format!("i{i}"));
                prev = m.and(prev, x);
            }
            m.add_output("y", prev);
            let (key, check) = m.structural_fingerprint();
            assert_ne!(key, check);
            assert!(seen.insert(key), "key collision at n={n}");
            assert!(seen.insert(check), "check collision at n={n}");
        }
    }

    #[test]
    fn hasher_streams_are_prefix_safe() {
        let mut a = FpHasher::new();
        a.str("ab");
        a.str("c");
        let mut b = FpHasher::new();
        b.str("a");
        b.str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
