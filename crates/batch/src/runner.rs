//! The batch runner: a global scoped-thread worker pool over jobs.
//!
//! Work stealing happens at *job* granularity: every worker thread pulls
//! the next unclaimed job index from one shared atomic counter, so a
//! worker that finishes early immediately picks up work from the rest of
//! the batch instead of idling behind a long job (the same
//! counter-plus-slots pattern the engine uses for clusters, lifted one
//! level up). Each job runs its engine single-threaded (`jobs = 1`) —
//! the pool is already saturated at job granularity, and nesting
//! per-cluster pools under it would oversubscribe the machine.
//!
//! All jobs share one [`MemoCache`], so a sweep, rectifiability verdict,
//! or complete verified patch computed for one job is reused by every
//! structurally identical (sub-)instance later in the batch — including
//! later `repeat` passes, which model warm-cache runs.
//!
//! The run-wide budget is apportioned: each job's [`Budget::child`]
//! shares the batch deadline while the conflict allowance is divided
//! evenly across jobs (a per-job manifest `budget` tightens it further).
//! A starved batch therefore degrades job by job to `Partial` records
//! instead of failing wholesale. Note that a job running under any
//! limit bypasses the memo cache (truncated results are not reusable
//! pure functions; see `eco_core::memo`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eco_core::{
    faultpoint, Budget, BudgetOptions, EcoEngine, EcoError, EcoInstance, EcoOptions, EcoOutcome,
    MemoCache, MemoStats, MemoStore,
};
use eco_netlist::{elaborate, parse_blif, parse_verilog, parse_weights, WeightTable};

use crate::executor::run_indexed;
use crate::manifest::{JobSpec, Manifest};
use crate::wal::{job_fingerprint, load_journal, BatchJournal, BatchJournalState};

/// Knobs for a batch run.
#[derive(Clone, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads stealing jobs; `0` = one per available core.
    pub jobs: usize,
    /// Passes over the job list sharing one memo cache (`0` acts as 1).
    /// Pass 0 is the cold run; later passes model warm-cache runs.
    pub repeat: usize,
    /// Run-wide governor budget, apportioned across jobs.
    pub budget: BudgetOptions,
    /// Base engine options for every job. The runner overrides `jobs`
    /// (to 1), `memo` (to the shared cache), and ignores `budget` (the
    /// apportioned child budget is passed directly).
    pub eco: EcoOptions,
    /// State directory for crash safety: a write-ahead job journal
    /// (`batch.wal`) plus the durable memo store (`memo.snap` /
    /// `memo.wal`). `None` (the default) runs fully in memory.
    pub journal: Option<PathBuf>,
    /// Replay `journal` before running: completed jobs (matched by
    /// content fingerprint) are emitted verbatim from the journal, only
    /// unfinished ones execute. Requires `journal`.
    pub resume: bool,
}

/// How a job ended, in order of increasing exit-code severity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Every cluster patched and the result freshly verified.
    Complete,
    /// The governor degraded the job to completed clusters only.
    Partial,
    /// Proven impossible to rectify over the given candidates.
    Unrectifiable,
    /// Load, parse, or engine error (including a panicking worker).
    Error,
}

impl JobStatus {
    /// Lowercase tag used in JSONL records.
    pub fn tag(self) -> &'static str {
        match self {
            JobStatus::Complete => "complete",
            JobStatus::Partial => "partial",
            JobStatus::Unrectifiable => "unrectifiable",
            JobStatus::Error => "error",
        }
    }

    /// Inverse of [`JobStatus::tag`] (journal replay).
    pub fn from_tag(tag: &str) -> Option<JobStatus> {
        match tag {
            "complete" => Some(JobStatus::Complete),
            "partial" => Some(JobStatus::Partial),
            "unrectifiable" => Some(JobStatus::Unrectifiable),
            "error" => Some(JobStatus::Error),
            _ => None,
        }
    }
}

/// One job's deterministic outcome record — exactly the fields that are
/// a pure function of the instance and options, so the JSONL report is
/// byte-identical for any `--jobs` setting. Timing and cache counters
/// deliberately live elsewhere ([`BatchOutcome`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// Repeat pass this record belongs to (0 = cold).
    pub pass: usize,
    /// Job index in manifest order.
    pub index: usize,
    /// Job name from the manifest.
    pub name: String,
    /// Outcome class.
    pub status: JobStatus,
    /// Number of rectification targets.
    pub targets: usize,
    /// Patches emitted (one per target on completion).
    pub patches: usize,
    /// Total base cost of the emitted patches.
    pub cost: u64,
    /// Total patch size in AND gates.
    pub size: u64,
    /// `true` iff a fresh SAT miter proved the patched circuit
    /// equivalent to the golden one in *this* run (memo hits included:
    /// cached patches are re-verified before being trusted).
    pub verified: bool,
    /// Failure reason or degradation summary; empty on completion.
    pub detail: String,
}

/// A loaded batch entry: a named instance or the error that prevented
/// loading it (kept so one broken entry doesn't abort the batch).
pub struct BatchJob {
    /// Display name for reports.
    pub name: String,
    /// The instance, or why it could not be built.
    pub source: Result<EcoInstance, String>,
    /// Optional per-job conflict allowance from the manifest.
    pub budget: Option<u64>,
}

impl BatchJob {
    /// Wraps an in-memory instance (mainly for tests and embedding).
    pub fn from_instance(name: impl Into<String>, instance: EcoInstance) -> Self {
        BatchJob {
            name: name.into(),
            source: Ok(instance),
            budget: None,
        }
    }
}

/// Everything a batch run produced.
pub struct BatchOutcome {
    /// Job records for all passes, sorted by `(pass, index)`.
    pub records: Vec<JobRecord>,
    /// Wall-clock time of each pass (cold first).
    pub pass_wall: Vec<Duration>,
    /// Final shared-cache counters.
    pub memo: MemoStats,
    /// Records replayed from the journal instead of recomputed
    /// (`--resume` only).
    pub reused: u64,
    /// Memo entries recovered from the durable store on startup.
    pub memo_loaded: u64,
    /// Journal/store records skipped as corrupt or torn, plus journal
    /// appends and store operations that failed (durability degraded,
    /// the batch continued).
    pub persist_errors: u64,
}

/// Builds [`BatchJob`]s from a manifest, reading circuits and weights
/// from disk. Load failures become `Err` sources, not panics.
pub fn load_jobs(manifest: &Manifest) -> Vec<BatchJob> {
    manifest
        .jobs
        .iter()
        .map(|spec| BatchJob {
            name: spec.name.clone(),
            source: load_job_instance(spec),
            budget: spec.budget,
        })
        .collect()
}

/// Loads one job spec's circuits and weights into an [`EcoInstance`] —
/// the same path the manifest runner uses, exposed so `eco-serve` can
/// load protocol requests identically. Failures are messages, not panics.
pub fn load_job_instance(spec: &JobSpec) -> Result<EcoInstance, String> {
    let read = |p: &Path| std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()));
    let weights = match &spec.weights {
        Some(p) => parse_weights(&read(p)?).map_err(|e| format!("{}: {e}", p.display()))?,
        None => WeightTable::new(1),
    };
    let is_verilog = |p: &Path| p.extension().and_then(|e| e.to_str()) != Some("blif");
    // Mirrors the `eco-patch` CLI: Verilog pairs keep the gate structure
    // (structural target-independence filter), BLIF goes via the AIG.
    if is_verilog(&spec.faulty) && is_verilog(&spec.golden) {
        let faulty = parse_verilog(&read(&spec.faulty)?)
            .map_err(|e| format!("{}: {e}", spec.faulty.display()))?;
        let golden = parse_verilog(&read(&spec.golden)?)
            .map_err(|e| format!("{}: {e}", spec.golden.display()))?;
        let targets = if spec.targets.is_empty() {
            default_targets(faulty.inputs.iter().map(String::as_str))?
        } else {
            spec.targets.clone()
        };
        EcoInstance::from_netlists(&spec.name, &faulty, &golden, targets, &weights)
            .map_err(|e| e.to_string())
    } else {
        let (faulty_aig, faulty_nets) = read_circuit(&spec.faulty)?;
        let (golden_aig, _) = read_circuit(&spec.golden)?;
        let targets = if spec.targets.is_empty() {
            default_targets((0..faulty_aig.num_inputs()).map(|i| faulty_aig.input_name(i)))?
        } else {
            spec.targets.clone()
        };
        EcoInstance::from_elaborated(
            &spec.name,
            faulty_aig,
            &faulty_nets,
            golden_aig,
            targets,
            &weights,
        )
        .map_err(|e| e.to_string())
    }
}

/// Default targets when the manifest names none: every `t_`-prefixed
/// input of the faulty circuit (the workgen/contest convention).
fn default_targets<'a>(inputs: impl Iterator<Item = &'a str>) -> Result<Vec<String>, String> {
    let targets: Vec<String> = inputs
        .filter(|n| n.starts_with("t_"))
        .map(str::to_string)
        .collect();
    if targets.is_empty() {
        return Err(
            "no targets: manifest names none and the faulty circuit has no \
                    t_-prefixed inputs"
                .into(),
        );
    }
    Ok(targets)
}

fn read_circuit(
    path: &Path,
) -> Result<
    (
        eco_aig::Aig,
        std::collections::HashMap<String, eco_aig::Lit>,
    ),
    String,
> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if path.extension().and_then(|e| e.to_str()) == Some("blif") {
        let m = parse_blif(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok((m.aig, m.net_lits))
    } else {
        let nl = parse_verilog(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let e = elaborate(&nl).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok((e.aig, e.net_lits))
    }
}

/// Runs every job (for every repeat pass) over the shared worker pool
/// and memo cache. Records come back in `(pass, index)` order no matter
/// how the pool interleaved the work.
pub fn run_batch(jobs: &[BatchJob], opts: &BatchOptions) -> BatchOutcome {
    let cache = Arc::new(MemoCache::new());
    let mut persist_errors = 0u64;
    let mut memo_loaded = 0u64;
    // Crash-safety state: recover the durable memo store and the job
    // journal before anything executes. Failures here degrade to an
    // in-memory run (counted), they never abort the batch.
    let store = opts
        .journal
        .as_deref()
        .and_then(|dir| match MemoStore::open(dir) {
            Ok(store) => {
                let loaded = store.load_into(&cache);
                memo_loaded = loaded.loaded;
                persist_errors += loaded.skipped;
                store.attach(&cache);
                Some(store)
            }
            Err(_) => {
                persist_errors += 1;
                None
            }
        });
    let resume_state: Option<BatchJournalState> = if opts.resume {
        opts.journal
            .as_deref()
            .and_then(|dir| match load_journal(dir) {
                Ok(state) => {
                    persist_errors += state.log.skipped_frames + state.bad_records;
                    Some(state)
                }
                Err(_) => {
                    persist_errors += 1;
                    None
                }
            })
    } else {
        None
    };
    let journal = opts
        .journal
        .as_deref()
        .and_then(|dir| match BatchJournal::open(dir) {
            Ok(j) => Some(j),
            Err(_) => {
                persist_errors += 1;
                None
            }
        });
    let reused = AtomicU64::new(0);
    let run_budget = Budget::new(&opts.budget);
    // Apportion the batch-wide conflict allowance evenly across jobs.
    let apportioned = opts
        .budget
        .cluster_conflicts
        .map(|total| (total / jobs.len().max(1) as u64).max(1));
    let workers = resolve_workers(opts.jobs).min(jobs.len().max(1));
    let repeat = opts.repeat.max(1);

    let mut records = Vec::with_capacity(jobs.len() * repeat);
    let mut pass_wall = Vec::with_capacity(repeat);
    for pass in 0..repeat {
        let t0 = Instant::now();
        let run_one = |index: usize| {
            let fp = job_fingerprint(pass, index, &jobs[index]);
            if let Some(state) = &resume_state {
                if let Some(record) = state.done.get(&fp) {
                    // Completed before the crash: replay the journaled
                    // record verbatim, never recompute.
                    reused.fetch_add(1, Ordering::Relaxed);
                    return record.clone();
                }
            }
            if let Some(journal) = &journal {
                // Write-ahead: the job is on disk before it executes, so
                // a kill here is a journaled-but-unfinished job the next
                // resume picks up.
                journal.admit(fp);
            }
            let record = run_job(
                pass,
                index,
                &jobs[index],
                opts,
                &run_budget,
                apportioned,
                &cache,
            );
            if let Some(journal) = &journal {
                journal.done(fp, &record);
            }
            record
        };
        // The shared claim-counter pool (executor.rs): one slot per job,
        // merged in index order, panicking jobs isolated to one error
        // record with poison-recovering slot locks.
        records.extend(run_indexed(workers, jobs.len(), run_one, |index| {
            panic_record(pass, index, &jobs[index].name)
        }));
        pass_wall.push(t0.elapsed());
    }

    if let Some(store) = &store {
        // Graceful finish: compact the journaled entries into the
        // snapshot so the next run warm-starts from one clean file.
        if store.snapshot(&cache).is_err() {
            persist_errors += 1;
        }
        persist_errors += store.append_errors();
    }
    if let Some(journal) = &journal {
        persist_errors += journal.append_errors();
    }

    BatchOutcome {
        records,
        pass_wall,
        memo: cache.stats(),
        reused: reused.load(Ordering::Relaxed),
        memo_loaded,
        persist_errors,
    }
}

fn resolve_workers(jobs: usize) -> usize {
    if jobs != 0 {
        return jobs;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The error record substituted when a job's worker panicked outside the
/// engine's own isolation (e.g. mid-slot-write).
fn panic_record(pass: usize, index: usize, name: &str) -> JobRecord {
    JobRecord {
        pass,
        index,
        name: name.to_string(),
        status: JobStatus::Error,
        targets: 0,
        patches: 0,
        cost: 0,
        size: 0,
        verified: false,
        detail: "job worker panicked".into(),
    }
}

fn run_job(
    pass: usize,
    index: usize,
    job: &BatchJob,
    opts: &BatchOptions,
    run_budget: &Budget,
    apportioned: Option<u64>,
    cache: &Arc<MemoCache>,
) -> JobRecord {
    let allowance = match (apportioned, job.budget) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let budget = run_budget.child(allowance);
    let mut record = execute_job(&job.name, &job.source, &opts.eco, &budget, cache);
    record.pass = pass;
    record.index = index;
    record
}

/// Runs one loaded job to a deterministic [`JobRecord`] — the shared
/// execution core of the batch runner and the `eco-serve` daemon.
///
/// The engine runs single-threaded (`jobs = 1`; the caller's pool is
/// already saturated at job granularity) over the shared `cache`, under
/// `budget` (derive it with [`Budget::child`] to apportion a wider
/// allowance). A panicking engine becomes an `error` record instead of
/// unwinding into the caller's pool. `pass` and `index` are zero;
/// callers embedding the record in a batch set them afterwards.
pub fn execute_job(
    name: &str,
    source: &Result<EcoInstance, String>,
    eco_base: &EcoOptions,
    budget: &Budget,
    cache: &Arc<MemoCache>,
) -> JobRecord {
    let mut record = JobRecord {
        pass: 0,
        index: 0,
        name: name.to_string(),
        status: JobStatus::Error,
        targets: 0,
        patches: 0,
        cost: 0,
        size: 0,
        verified: false,
        detail: String::new(),
    };
    let instance = match source {
        Ok(instance) => instance,
        Err(msg) => {
            record.detail = msg.clone();
            return record;
        }
    };
    record.targets = instance.targets.len();

    let mut eco = eco_base.clone();
    eco.jobs = 1;
    eco.memo = Some(Arc::clone(cache));
    let engine = EcoEngine::new(instance.clone(), eco);

    // A panicking job must not take the whole batch (and its scoped pool)
    // down with it; it becomes an `error` record like any other failure.
    // The chaos `solver.panic` site detonates here, inside the isolation
    // boundary it exists to exercise.
    match catch_unwind(AssertUnwindSafe(|| {
        faultpoint::maybe_panic("solver.panic");
        engine.run_governed_with(budget)
    })) {
        Err(_) => record.detail = "job worker panicked".into(),
        Ok(Err(EcoError::Unrectifiable(why))) => {
            record.status = JobStatus::Unrectifiable;
            record.detail = why;
        }
        Ok(Err(e)) => record.detail = e.to_string(),
        Ok(Ok(EcoOutcome::Complete(result))) => {
            record.status = JobStatus::Complete;
            record.patches = result.patches.len();
            record.cost = result.cost;
            record.size = result.size as u64;
            record.verified = true;
        }
        Ok(Ok(EcoOutcome::Partial(partial))) => {
            record.status = JobStatus::Partial;
            record.patches = partial.patches.len();
            record.cost = partial.cost;
            record.size = partial.size as u64;
            record.detail = partial.reason;
        }
    }
    record
}
