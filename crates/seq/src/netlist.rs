//! The sequential netlist model.
//!
//! A [`SeqNetlist`] is an [`Aig`] whose latch current states are ordinary
//! inputs, plus [`Latch`] records giving each state's next-state literal
//! and reset value, and a name → literal map for every named net. All
//! sequential structure lives *beside* the AIG, so every combinational
//! algorithm in the workspace (FRAIG, SAT, the ECO engine) applies
//! unchanged to the unrolled form.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

use eco_aig::{Aig, Lit, TransformError, Var};
use eco_netlist::LatchInit;

/// A latch: the current state is the input variable `state` of the
/// owning AIG; `next` is the next-state literal in the same AIG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Latch {
    /// Current-state variable (an input of the AIG).
    pub state: Var,
    /// Next-state literal.
    pub next: Lit,
    /// Reset value at cycle 0.
    pub init: LatchInit,
}

/// Error produced by sequential-netlist construction and surgery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeqError {
    /// A latch's state variable is not an input of the AIG.
    StateNotInput(Var),
    /// Two latches share the same state variable.
    DuplicateState(String),
    /// A named net was requested but does not exist.
    UnknownNet(String),
    /// The net cannot be cut into a rectification target (it is a
    /// primary input, a latch state, or a complemented alias).
    NotCuttable(String),
    /// A patch output does not name a target pseudo-input.
    UnknownTarget(String),
    /// A patch input does not name an existing net.
    UnknownPatchInput(String),
    /// Unrolling requires at least one frame.
    ZeroFrames,
    /// An AIG transform failed (node budget, unmapped cone input).
    Transform(TransformError),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::StateNotInput(v) => {
                write!(f, "latch state variable {} is not an AIG input", v.index())
            }
            SeqError::DuplicateState(n) => write!(f, "two latches share state `{n}`"),
            SeqError::UnknownNet(n) => write!(f, "no net named `{n}`"),
            SeqError::NotCuttable(n) => write!(
                f,
                "net `{n}` cannot become a target (inputs and latch states have no driver to cut)"
            ),
            SeqError::UnknownTarget(n) => write!(f, "patch output `{n}` is not a target input"),
            SeqError::UnknownPatchInput(n) => write!(f, "patch input `{n}` names no net"),
            SeqError::ZeroFrames => write!(f, "unrolling requires at least 1 frame"),
            SeqError::Transform(e) => write!(f, "{e}"),
        }
    }
}

impl Error for SeqError {}

impl From<TransformError> for SeqError {
    fn from(e: TransformError) -> Self {
        SeqError::Transform(e)
    }
}

/// A latch-bearing design: combinational logic in `aig`, sequential
/// structure in `latches`, and a name for every tappable signal.
#[derive(Clone, Debug)]
pub struct SeqNetlist {
    /// Design name (for reports and emitted models).
    pub name: String,
    /// Combinational logic; latch states are inputs.
    pub aig: Aig,
    /// Latches in declaration order.
    pub latches: Vec<Latch>,
    /// Literal of every named net (inputs, latch states, logic nets).
    pub net_lits: HashMap<String, Lit>,
}

impl SeqNetlist {
    /// Builds and validates a sequential netlist.
    ///
    /// # Errors
    ///
    /// [`SeqError::StateNotInput`] if a latch state is not an AIG input;
    /// [`SeqError::DuplicateState`] if two latches share one.
    pub fn new(
        name: impl Into<String>,
        aig: Aig,
        latches: Vec<Latch>,
        net_lits: HashMap<String, Lit>,
    ) -> Result<Self, SeqError> {
        let mut seen: HashSet<Var> = HashSet::new();
        for l in &latches {
            if !aig.is_input(l.state) {
                return Err(SeqError::StateNotInput(l.state));
            }
            if !seen.insert(l.state) {
                let pos = aig.input_pos(l.state).expect("checked input");
                return Err(SeqError::DuplicateState(aig.input_name(pos).to_owned()));
            }
        }
        Ok(SeqNetlist {
            name: name.into(),
            aig,
            latches,
            net_lits,
        })
    }

    /// Wraps a purely combinational AIG (zero latches).
    pub fn from_comb(name: impl Into<String>, aig: Aig, net_lits: HashMap<String, Lit>) -> Self {
        SeqNetlist {
            name: name.into(),
            aig,
            latches: Vec::new(),
            net_lits,
        }
    }

    /// True when the design has no latches.
    pub fn is_combinational(&self) -> bool {
        self.latches.is_empty()
    }

    /// The latch state variables.
    pub fn state_vars(&self) -> HashSet<Var> {
        self.latches.iter().map(|l| l.state).collect()
    }

    /// Name of latch `k` (the input name of its state variable).
    pub fn latch_name(&self, k: usize) -> &str {
        let pos = self
            .aig
            .input_pos(self.latches[k].state)
            .expect("validated latch state");
        self.aig.input_name(pos)
    }

    /// Primary-input positions: every AIG input position that is not a
    /// latch state, in declaration order.
    pub fn primary_input_positions(&self) -> Vec<usize> {
        let states = self.state_vars();
        (0..self.aig.num_inputs())
            .filter(|&p| !states.contains(&self.aig.input_var(p)))
            .collect()
    }

    /// Primary-input names, in declaration order.
    pub fn primary_input_names(&self) -> Vec<String> {
        self.primary_input_positions()
            .into_iter()
            .map(|p| self.aig.input_name(p).to_owned())
            .collect()
    }

    /// Cycle-accurate simulation: `stimulus[f]` holds the primary-input
    /// values of frame `f` (in [`Self::primary_input_positions`] order);
    /// returns the output values of every frame. [`LatchInit::DontCare`]
    /// latches start at 0.
    pub fn simulate(&self, stimulus: &[Vec<bool>]) -> Vec<Vec<bool>> {
        let pi_pos = self.primary_input_positions();
        let mut state: Vec<bool> = self
            .latches
            .iter()
            .map(|l| matches!(l.init, LatchInit::One))
            .collect();
        let mut frames = Vec::with_capacity(stimulus.len());
        for frame in stimulus {
            let mut vals = vec![false; self.aig.num_inputs()];
            for (&p, &v) in pi_pos.iter().zip(frame) {
                vals[p] = v;
            }
            for (l, &s) in self.latches.iter().zip(&state) {
                let p = self.aig.input_pos(l.state).expect("validated latch state");
                vals[p] = s;
            }
            frames.push(self.aig.eval(&vals));
            state = self
                .latches
                .iter()
                .map(|l| self.aig.eval_lit(l.next, &vals))
                .collect();
        }
        frames
    }

    /// Root literals that define the design, in a fixed order: outputs,
    /// latch next-states, then named nets sorted by name. Substituting or
    /// importing this list (plus [`Self::rebuild_from_roots`]) preserves
    /// the whole design.
    pub(crate) fn roots(&self) -> (Vec<Lit>, Vec<String>) {
        let mut names: Vec<String> = self.net_lits.keys().cloned().collect();
        names.sort();
        let mut roots: Vec<Lit> = self.aig.outputs().iter().map(|o| o.lit).collect();
        roots.extend(self.latches.iter().map(|l| l.next));
        roots.extend(names.iter().map(|n| self.net_lits[n]));
        (roots, names)
    }

    /// Rebuilds outputs/latches/net_lits from a substituted root list
    /// (same order as [`Self::roots`]) over the mutated manager `aig`.
    fn rebuild_from_roots(&self, mut aig: Aig, new_roots: &[Lit], names: &[String]) -> SeqNetlist {
        let n_out = self.aig.num_outputs();
        let n_latch = self.latches.len();
        let out_meta: Vec<String> = self.aig.outputs().iter().map(|o| o.name.clone()).collect();
        aig.clear_outputs();
        for (name, &lit) in out_meta.iter().zip(&new_roots[..n_out]) {
            aig.add_output(name.clone(), lit);
        }
        let latches: Vec<Latch> = self
            .latches
            .iter()
            .zip(&new_roots[n_out..n_out + n_latch])
            .map(|(l, &next)| Latch {
                state: l.state,
                next,
                init: l.init,
            })
            .collect();
        let net_lits: HashMap<String, Lit> = names
            .iter()
            .cloned()
            .zip(new_roots[n_out + n_latch..].iter().copied())
            .collect();
        SeqNetlist {
            name: self.name.clone(),
            aig,
            latches,
            net_lits,
        }
    }

    /// Cuts the named nets into floating target pseudo-inputs: each
    /// target's driver is disconnected and a fresh input with the
    /// target's name takes its place everywhere (fanout, latch
    /// next-states, outputs). This is the sequential analogue of the
    /// contest fault model.
    ///
    /// # Errors
    ///
    /// [`SeqError::UnknownNet`] if a target names no net;
    /// [`SeqError::NotCuttable`] if it names an input, a latch state, or
    /// a complemented alias of another net.
    pub fn cut_nets(&self, targets: &[String]) -> Result<SeqNetlist, SeqError> {
        let mut work = self.aig.clone();
        let mut map: HashMap<Var, Lit> = HashMap::new();
        for t in targets {
            let &lit = self
                .net_lits
                .get(t.as_str())
                .ok_or_else(|| SeqError::UnknownNet(t.clone()))?;
            if !work.is_and(lit.var()) {
                return Err(SeqError::NotCuttable(t.clone()));
            }
            // A complemented net still cuts cleanly: substituting
            // `var → ¬t` makes the named net itself equal `t`.
            let fresh = work.add_input(t.clone());
            if map
                .insert(lit.var(), fresh.xor_complement(lit.is_complement()))
                .is_some()
            {
                return Err(SeqError::NotCuttable(t.clone()));
            }
        }
        let (roots, names) = self.roots();
        let new_roots = work.substitute(&roots, &map);
        Ok(self.rebuild_from_roots(work, &new_roots, &names))
    }

    /// Splices a patch into the design: every patch output must name a
    /// floating target input, every patch input an existing (non-target)
    /// net. The targets stop being inputs — the rebuilt AIG contains
    /// only the surviving primary inputs and latch states, with target
    /// nets driven by the patch logic.
    ///
    /// # Errors
    ///
    /// [`SeqError::UnknownTarget`] / [`SeqError::UnknownPatchInput`] on
    /// name-resolution failures, [`SeqError::Transform`] if the splice
    /// overflows the node budget.
    pub fn splice(&self, patch: &Aig) -> Result<SeqNetlist, SeqError> {
        let targets: HashSet<&str> = patch.outputs().iter().map(|o| o.name.as_str()).collect();
        let mut work = self.aig.clone();
        // Patch inputs resolve against named nets (targets excluded).
        let mut input_map: HashMap<Var, Lit> = HashMap::new();
        for pos in 0..patch.num_inputs() {
            let n = patch.input_name(pos);
            if targets.contains(n) {
                return Err(SeqError::UnknownPatchInput(n.to_owned()));
            }
            let &lit = self
                .net_lits
                .get(n)
                .ok_or_else(|| SeqError::UnknownPatchInput(n.to_owned()))?;
            input_map.insert(patch.input_var(pos), lit);
        }
        let patch_roots: Vec<Lit> = patch.outputs().iter().map(|o| o.lit).collect();
        let imported = work.import(patch, &patch_roots, &input_map)?;
        // Drive each target with its patch function.
        let mut map: HashMap<Var, Lit> = HashMap::new();
        let mut target_vars: HashSet<Var> = HashSet::new();
        for (out, &lit) in patch.outputs().iter().zip(&imported) {
            let v = self
                .aig
                .find_input(&out.name)
                .ok_or_else(|| SeqError::UnknownTarget(out.name.clone()))?;
            map.insert(v, lit);
            target_vars.insert(v);
        }
        let (roots, names) = self.roots();
        let new_roots = work.substitute(&roots, &map);
        let spliced = self.rebuild_from_roots(work, &new_roots, &names);

        // Re-import into a fresh manager without the target inputs, so
        // the patched design no longer lists them as primary inputs.
        let mut clean = Aig::new();
        let mut fresh_inputs: HashMap<Var, Lit> = HashMap::new();
        for pos in 0..spliced.aig.num_inputs() {
            let v = spliced.aig.input_var(pos);
            if target_vars.contains(&v) {
                continue;
            }
            let lit = clean.add_input(spliced.aig.input_name(pos).to_owned());
            fresh_inputs.insert(v, lit);
        }
        let (roots2, names2) = spliced.roots();
        let moved = clean.import(&spliced.aig, &roots2, &fresh_inputs)?;
        let mut rebuilt = spliced.rebuild_from_roots(clean, &moved, &names2);
        // Latch state vars moved with the import.
        for l in &mut rebuilt.latches {
            l.state = fresh_inputs[&l.state].var();
        }
        rebuilt.name = self.name.clone();
        Ok(rebuilt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// d-input shift register with an AND tap: q = s0 & s1, s0' = d^s1,
    /// s1' = s0. Net `w` names the feedback XOR.
    fn sample() -> SeqNetlist {
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let s0 = aig.add_input("s0");
        let s1 = aig.add_input("s1");
        let w = aig.xor(d, s1);
        let q = aig.and(s0, s1);
        aig.add_output("q", q);
        let net_lits = HashMap::from([
            ("d".to_string(), d),
            ("s0".to_string(), s0),
            ("s1".to_string(), s1),
            ("w".to_string(), w),
            ("q".to_string(), q),
        ]);
        SeqNetlist::new(
            "sr",
            aig,
            vec![
                Latch {
                    state: s0.var(),
                    next: w,
                    init: LatchInit::Zero,
                },
                Latch {
                    state: s1.var(),
                    next: s0,
                    init: LatchInit::One,
                },
            ],
            net_lits,
        )
        .expect("valid")
    }

    #[test]
    fn validation_rejects_bad_latches() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.and(a, !a);
        let l = Latch {
            state: b.var(),
            next: a,
            init: LatchInit::Zero,
        };
        assert!(matches!(
            SeqNetlist::new("x", aig.clone(), vec![l], HashMap::new()),
            Err(SeqError::StateNotInput(_))
        ));
        let l2 = Latch {
            state: a.var(),
            next: a,
            init: LatchInit::Zero,
        };
        assert!(matches!(
            SeqNetlist::new("x", aig, vec![l2, l2], HashMap::new()),
            Err(SeqError::DuplicateState(_))
        ));
    }

    #[test]
    fn simulation_steps_latches() {
        let sr = sample();
        // init: s0=0, s1=1. Frame 0: q = 0&1 = 0; s0'=d^1, s1'=0.
        // d = 1,0,0: states (0,1) → (0,0) → (1? d=0^0=0 ... )
        let out = sr.simulate(&[vec![true], vec![false], vec![false]]);
        // f0: q = 0&1 = 0; next (1^? d=1, s1=1 → 0, s0=0)
        //   s0' = 1^1 = 0, s1' = 0.
        // f1: s=(0,0) q=0; s0' = 0^0 = 0, s1' = 0.
        // f2: q=0.
        assert_eq!(out, vec![vec![false], vec![false], vec![false]]);
        // With d starting 0 and init (0,1): s0'=0^1=1 → f1 s=(1,0), q=0;
        // f1: s0'=d(1)^0=1, s1'=1 → f2 s=(1,1), q=1.
        let out = sr.simulate(&[vec![false], vec![true], vec![false]]);
        assert_eq!(out[2], vec![true]);
    }

    #[test]
    fn cut_and_splice_are_inverse() {
        let sr = sample();
        let faulty = sr.cut_nets(&["w".to_string()]).expect("cuttable");
        // `w` is now a floating input feeding latch s0.
        assert!(faulty.aig.find_input("w").is_some());
        assert_eq!(faulty.latches.len(), 2);

        // Patch that restores w = d ^ s1.
        let mut patch = Aig::new();
        let d = patch.add_input("d");
        let s1 = patch.add_input("s1");
        let w = patch.xor(d, s1);
        patch.add_output("w", w);
        let healed = faulty.splice(&patch).expect("splices");
        assert!(healed.aig.find_input("w").is_none());
        // Behaviour matches the original on a stimulus sweep.
        for bits in 0u32..32 {
            let stim: Vec<Vec<bool>> = (0..5).map(|f| vec![bits >> f & 1 == 1]).collect();
            assert_eq!(sr.simulate(&stim), healed.simulate(&stim), "{bits:#b}");
        }
    }

    #[test]
    fn cut_rejects_inputs_and_unknown_nets() {
        let sr = sample();
        assert!(matches!(
            sr.cut_nets(&["d".to_string()]),
            Err(SeqError::NotCuttable(_))
        ));
        assert!(matches!(
            sr.cut_nets(&["s0".to_string()]),
            Err(SeqError::NotCuttable(_))
        ));
        assert!(matches!(
            sr.cut_nets(&["ghost".to_string()]),
            Err(SeqError::UnknownNet(_))
        ));
    }

    #[test]
    fn splice_rejects_bad_names() {
        let sr = sample();
        let faulty = sr.cut_nets(&["w".to_string()]).expect("cuttable");
        let mut patch = Aig::new();
        let x = patch.add_input("nope");
        patch.add_output("w", x);
        assert!(matches!(
            faulty.splice(&patch),
            Err(SeqError::UnknownPatchInput(_))
        ));
        let mut patch2 = Aig::new();
        let d = patch2.add_input("d");
        patch2.add_output("ghost", d);
        assert!(matches!(
            faulty.splice(&patch2),
            Err(SeqError::UnknownTarget(_))
        ));
    }
}
