//! The any-to-any format hub.
//!
//! One [`SeqNetlist`] in the middle, every supported interchange format
//! on the rim: structural Verilog (`.v`), BLIF with latches (`.blif`),
//! ASCII and binary AIGER with latches (`.aag`/`.aig`), bit-level BTOR2
//! (`.btor2`), and Tseitin DIMACS CNF (`.cnf`, export only). Reading any
//! format and writing any other gives `6 × 5` conversion pairs from two
//! functions, [`read_design`] and [`write_design`].
//!
//! Sequential capability differs per format: `.blif`, `.aag`, `.aig`,
//! and `.btor2` carry latches; `.v` and `.cnf` are combinational and
//! produce a typed [`HubError::SequentialUnsupported`] when handed a
//! latch-bearing design (unroll first with `eco-patch --unroll` or
//! [`crate::unroll`]).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use eco_aig::{
    parse_aiger_ascii_seq, parse_aiger_binary_seq, write_aiger_ascii_seq, write_aiger_binary_seq,
    Aig, AigerInit, AigerLatch, Lit,
};
use eco_netlist::{
    elaborate, netlist_from_aig, parse_blif_seq, parse_verilog, write_blif_seq, write_verilog,
    LatchInit,
};
use eco_sat::{encode_cone, ClauseSink};

use crate::btor2::{parse_btor2, write_btor2};
use crate::netlist::{Latch, SeqNetlist};

/// A supported interchange format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// Structural Verilog subset (combinational only).
    Verilog,
    /// BLIF with `.latch` support.
    Blif,
    /// ASCII AIGER (`aag`) with latches.
    AigerAscii,
    /// Binary AIGER (`aig`) with latches.
    AigerBinary,
    /// Bit-level BTOR2 with states.
    Btor2,
    /// Tseitin-encoded DIMACS CNF (export only, combinational only).
    Cnf,
}

/// The formats the hub knows, as shown in error messages.
pub const SUPPORTED_EXTENSIONS: &str = ".v, .blif, .aag, .aig, .btor2, .cnf";

impl Format {
    /// Resolves a format from a file path's extension.
    ///
    /// # Errors
    ///
    /// [`HubError::UnknownExtension`] naming the offending path,
    /// extension, and the supported set.
    pub fn from_path(path: &str) -> Result<Format, HubError> {
        let ext = path.rsplit_once('.').map(|(_, e)| e).unwrap_or("");
        Format::from_name(ext).ok_or_else(|| HubError::UnknownExtension {
            path: path.to_owned(),
            ext: ext.to_owned(),
        })
    }

    /// Resolves a format from a name or extension (`v`, `verilog`,
    /// `blif`, `aag`, `aig`, `aiger`, `btor2`, `btor`, `cnf`, `dimacs`).
    pub fn from_name(name: &str) -> Option<Format> {
        match name.to_ascii_lowercase().as_str() {
            "v" | "verilog" => Some(Format::Verilog),
            "blif" => Some(Format::Blif),
            "aag" => Some(Format::AigerAscii),
            "aig" | "aiger" => Some(Format::AigerBinary),
            "btor2" | "btor" => Some(Format::Btor2),
            "cnf" | "dimacs" => Some(Format::Cnf),
            _ => None,
        }
    }

    /// Canonical short name (matches the default file extension).
    pub fn name(self) -> &'static str {
        match self {
            Format::Verilog => "v",
            Format::Blif => "blif",
            Format::AigerAscii => "aag",
            Format::AigerBinary => "aig",
            Format::Btor2 => "btor2",
            Format::Cnf => "cnf",
        }
    }

    /// Whether the format can carry latches.
    pub fn sequential(self) -> bool {
        matches!(
            self,
            Format::Blif | Format::AigerAscii | Format::AigerBinary | Format::Btor2
        )
    }
}

/// Error produced by the format hub.
#[derive(Debug)]
pub enum HubError {
    /// A path's extension maps to no supported format.
    UnknownExtension {
        /// The offending path.
        path: String,
        /// Its extension (possibly empty).
        ext: String,
    },
    /// A `--from`/`--to` format name maps to no supported format.
    UnknownFormat(String),
    /// The chosen output format cannot carry latches.
    SequentialUnsupported(Format),
    /// CNF is export-only; it cannot be read back as a design.
    CnfImport,
    /// The input is not valid text (binary AIGER aside, every format is
    /// UTF-8).
    NotUtf8,
    /// The input failed to parse or elaborate.
    Parse(String),
}

impl fmt::Display for HubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HubError::UnknownExtension { path, ext } => {
                if ext.is_empty() {
                    write!(
                        f,
                        "`{path}` has no recognizable extension; supported: {SUPPORTED_EXTENSIONS} \
                         (or force a format with --from/--to)"
                    )
                } else {
                    write!(
                        f,
                        "`{path}`: unknown extension `.{ext}`; supported: {SUPPORTED_EXTENSIONS} \
                         (or force a format with --from/--to)"
                    )
                }
            }
            HubError::UnknownFormat(n) => write!(
                f,
                "unknown format `{n}`; supported: v, blif, aag, aig, btor2, cnf"
            ),
            HubError::SequentialUnsupported(fmt_) => write!(
                f,
                "format `{}` is combinational-only but the design has latches; \
                 unroll first (eco-patch --unroll) or pick blif/aag/aig/btor2",
                fmt_.name()
            ),
            HubError::CnfImport => write!(f, "cnf is export-only; it cannot be read as a design"),
            HubError::NotUtf8 => write!(f, "input is not valid UTF-8 text"),
            HubError::Parse(m) => write!(f, "{m}"),
        }
    }
}

impl Error for HubError {}

fn text(data: &[u8]) -> Result<&str, HubError> {
    std::str::from_utf8(data).map_err(|_| HubError::NotUtf8)
}

fn parse_err(e: impl fmt::Display) -> HubError {
    HubError::Parse(e.to_string())
}

/// Name map for a bare AIG: inputs and outputs by their AIG names.
fn io_net_lits(aig: &Aig) -> HashMap<String, Lit> {
    let mut nets = HashMap::new();
    for pos in 0..aig.num_inputs() {
        nets.insert(
            aig.input_name(pos).to_owned(),
            aig.input_var(pos).lit(false),
        );
    }
    for out in aig.outputs() {
        nets.entry(out.name.clone()).or_insert(out.lit);
    }
    nets
}

/// Reads a design from raw bytes in the given format.
///
/// # Errors
///
/// [`HubError::CnfImport`] for CNF, [`HubError::NotUtf8`] for non-text
/// input to a text format, [`HubError::Parse`] on syntax or elaboration
/// errors (the underlying typed parser error, stringified).
pub fn read_design(format: Format, data: &[u8]) -> Result<SeqNetlist, HubError> {
    match format {
        Format::Verilog => {
            let nl = parse_verilog(text(data)?).map_err(parse_err)?;
            let name = nl.name.clone();
            let elab = elaborate(&nl).map_err(parse_err)?;
            Ok(SeqNetlist::from_comb(name, elab.aig, elab.net_lits))
        }
        Format::Blif => {
            let model = parse_blif_seq(text(data)?).map_err(parse_err)?;
            let latches = model
                .latches
                .iter()
                .map(|l| {
                    let state = model
                        .aig
                        .find_input(&l.state)
                        .expect("parser registers latch states as inputs");
                    Latch {
                        state,
                        next: l.next,
                        init: l.init,
                    }
                })
                .collect();
            SeqNetlist::new(model.name, model.aig, latches, model.net_lits).map_err(parse_err)
        }
        Format::AigerAscii | Format::AigerBinary => {
            let (aig, aiger_latches) = if format == Format::AigerAscii {
                parse_aiger_ascii_seq(text(data)?).map_err(parse_err)?
            } else {
                parse_aiger_binary_seq(data).map_err(parse_err)?
            };
            let latches = aiger_latches
                .iter()
                .map(|l| Latch {
                    state: l.state,
                    next: l.next,
                    init: match l.init {
                        AigerInit::Zero => LatchInit::Zero,
                        AigerInit::One => LatchInit::One,
                        AigerInit::DontCare => LatchInit::DontCare,
                    },
                })
                .collect();
            let nets = io_net_lits(&aig);
            SeqNetlist::new("top", aig, latches, nets).map_err(parse_err)
        }
        Format::Btor2 => parse_btor2(text(data)?).map_err(parse_err),
        Format::Cnf => Err(HubError::CnfImport),
    }
}

/// Writes a design as raw bytes in the given format.
///
/// # Errors
///
/// [`HubError::SequentialUnsupported`] when a latch-bearing design meets
/// a combinational-only format (`.v`, `.cnf`).
pub fn write_design(format: Format, design: &SeqNetlist) -> Result<Vec<u8>, HubError> {
    if !design.is_combinational() && !format.sequential() {
        return Err(HubError::SequentialUnsupported(format));
    }
    let latches: Vec<(eco_aig::Var, Lit, LatchInit)> = design
        .latches
        .iter()
        .map(|l| (l.state, l.next, l.init))
        .collect();
    let aiger_latches: Vec<AigerLatch> = design
        .latches
        .iter()
        .map(|l| AigerLatch {
            state: l.state,
            next: l.next,
            init: match l.init {
                LatchInit::Zero => AigerInit::Zero,
                LatchInit::One => AigerInit::One,
                LatchInit::DontCare => AigerInit::DontCare,
            },
        })
        .collect();
    Ok(match format {
        Format::Verilog => write_verilog(&netlist_from_aig(&design.aig, &design.name)).into_bytes(),
        Format::Blif => write_blif_seq(&design.aig, &design.name, &latches).into_bytes(),
        Format::AigerAscii => write_aiger_ascii_seq(&design.aig, &aiger_latches).into_bytes(),
        Format::AigerBinary => write_aiger_binary_seq(&design.aig, &aiger_latches),
        Format::Btor2 => write_btor2(design).into_bytes(),
        Format::Cnf => write_cnf(&design.aig).into_bytes(),
    })
}

/// Collects Tseitin clauses without a solver.
struct CollectSink {
    next: u32,
    clauses: Vec<Vec<eco_sat::Lit>>,
}

impl ClauseSink for CollectSink {
    fn sink_var(&mut self) -> eco_sat::Var {
        let v = eco_sat::Var::new(self.next);
        self.next += 1;
        v
    }
    fn sink_clause(&mut self, lits: &[eco_sat::Lit]) {
        self.clauses.push(lits.to_vec());
    }
}

/// Tseitin-encodes the output cones into DIMACS CNF. The satisfying
/// assignments project onto the circuit's consistent valuations; `c
/// input` / `c output` comments map names to DIMACS literals.
fn write_cnf(aig: &Aig) -> String {
    use fmt::Write as _;
    let mut sink = CollectSink {
        next: 0,
        clauses: Vec::new(),
    };
    let mut map: HashMap<eco_aig::Var, eco_sat::Lit> = HashMap::new();
    for pos in 0..aig.num_inputs() {
        map.insert(aig.input_var(pos), sink.sink_var().pos());
    }
    let roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    let root_lits = encode_cone(aig, &roots, &mut map, &mut sink);
    let mut s = String::new();
    for pos in 0..aig.num_inputs() {
        let _ = writeln!(
            s,
            "c input {} {}",
            aig.input_name(pos),
            map[&aig.input_var(pos)].to_dimacs()
        );
    }
    for (out, lit) in aig.outputs().iter().zip(&root_lits) {
        let _ = writeln!(s, "c output {} {}", out.name, lit.to_dimacs());
    }
    s.push_str(&eco_sat::write_dimacs(sink.next as usize, &sink.clauses));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Latch;

    fn sample() -> SeqNetlist {
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let s0 = aig.add_input("s0");
        let q = aig.xor(d, s0);
        aig.add_output("q", q);
        let nets = HashMap::from([
            ("d".to_string(), d),
            ("s0".to_string(), s0),
            ("q".to_string(), q),
        ]);
        SeqNetlist::new(
            "t",
            aig,
            vec![Latch {
                state: s0.var(),
                next: q,
                init: LatchInit::Zero,
            }],
            nets,
        )
        .expect("valid")
    }

    #[test]
    fn sequential_formats_round_trip_behavior() {
        let d = sample();
        for fmt in [
            Format::Blif,
            Format::AigerAscii,
            Format::AigerBinary,
            Format::Btor2,
        ] {
            let bytes = write_design(fmt, &d).expect("writes");
            let back = read_design(fmt, &bytes).expect("reads");
            assert_eq!(back.latches.len(), 1, "{fmt:?}");
            for bits in 0u32..16 {
                let stim: Vec<Vec<bool>> = (0..4).map(|f| vec![bits >> f & 1 == 1]).collect();
                assert_eq!(d.simulate(&stim), back.simulate(&stim), "{fmt:?} {bits:#b}");
            }
            // Write → parse → write is a byte fixpoint.
            assert_eq!(
                write_design(fmt, &back).expect("rewrites"),
                bytes,
                "{fmt:?}"
            );
        }
    }

    #[test]
    fn combinational_formats_reject_latches() {
        let d = sample();
        for fmt in [Format::Verilog, Format::Cnf] {
            assert!(matches!(
                write_design(fmt, &d),
                Err(HubError::SequentialUnsupported(_))
            ));
        }
    }

    #[test]
    fn cnf_export_is_satisfiable_and_projects_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.and(a, b);
        aig.add_output("y", y);
        let d = SeqNetlist::from_comb("c", aig, HashMap::new());
        let bytes = write_design(Format::Cnf, &d).expect("writes");
        let text = String::from_utf8(bytes).expect("utf8");
        assert!(text.contains("c input a 1"));
        assert!(text.contains("c output y"));
        let problem = eco_sat::parse_dimacs(
            &text
                .lines()
                .filter(|l| !l.starts_with('c'))
                .collect::<Vec<_>>()
                .join("\n"),
        )
        .expect("parses");
        // Force y = a & b true: a=1, b=1 must be the only model with y=1.
        let mut solver = eco_sat::Solver::new();
        for _ in 0..problem.num_vars {
            solver.new_var();
        }
        for c in &problem.clauses {
            solver.add_clause(c);
        }
        assert_eq!(solver.solve(&[]), Some(true));
    }

    #[test]
    fn cnf_cannot_be_read() {
        assert!(matches!(
            read_design(Format::Cnf, b"p cnf 0 0\n"),
            Err(HubError::CnfImport)
        ));
    }

    #[test]
    fn extension_resolution_and_errors() {
        assert_eq!(Format::from_path("x/y.aag").unwrap(), Format::AigerAscii);
        assert_eq!(Format::from_path("a.btor2").unwrap(), Format::Btor2);
        let e = Format::from_path("design.xyz").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains(".xyz") && msg.contains(".btor2"), "{msg}");
        assert!(Format::from_path("noext").is_err());
        assert!(Format::from_name("verilog") == Some(Format::Verilog));
        assert!(Format::from_name("nope").is_none());
    }

    #[test]
    fn verilog_round_trip_combinational() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let y = aig.or(a, b);
        aig.add_output("y", y);
        let d = SeqNetlist::from_comb("m", aig, HashMap::new());
        let bytes = write_design(Format::Verilog, &d).expect("writes");
        let back = read_design(Format::Verilog, &bytes).expect("reads");
        for bits in 0u32..4 {
            let (a, b) = (bits & 1 == 1, bits >> 1 == 1);
            assert_eq!(back.aig.eval(&[a, b]), vec![a || b]);
        }
    }
}
