//! Rectifiability checking (§4.1, Eq. 2): `∀X ∃T. F(X, T) = G(X)`.
//!
//! The paper resolves multi-fix completeness through this 2QBF condition
//! (citing the Skolem-certificate view of [20]); here it is decided by the
//! standard counterexample-guided abstraction refinement for `∀∃`
//! formulas: an A-solver proposes universal assignments `x*` that defeat
//! every *strategy* `t*` seen so far, and a B-solver checks whether some
//! `T` completes the proposed `x*`. Each B-witness `t*` refines the
//! A-solver with a fresh constraint `¬R(X, t*)`; UNSAT on the A side
//! proves rectifiability (finitely many strategies cover all of `X`).

use std::collections::HashMap;
use std::sync::Mutex;

use eco_aig::{Lit as ALit, Var as AVar};
use eco_sat::{
    encode_cone, race, ArtifactPolicy, LBool, Lit as SLit, MemberOutcome, PortfolioSpec, SolveCtl,
    Solver,
};

use crate::telemetry::Telemetry;
use crate::Workspace;

/// Outcome of the Eq.-2 check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rectifiability {
    /// `∀X ∃T. F = G` holds: a patch over the targets exists.
    Rectifiable,
    /// A universal counterexample: for this `X` assignment (by input
    /// name), no target assignment makes all outputs match.
    Counterexample(Vec<(String, bool)>),
    /// A budget ran out before the CEGAR loop converged.
    Unknown,
}

impl Rectifiability {
    /// `true` for [`Rectifiability::Rectifiable`].
    pub fn is_rectifiable(&self) -> bool {
        *self == Rectifiability::Rectifiable
    }
}

/// Decides Eq. (2) for the workspace's circuits and targets.
///
/// `max_iterations` bounds the CEGAR refinements (each adds one cofactored
/// miter cone to the A-solver); `conflict_budget` bounds each SAT call.
/// Builds scratch nodes in `ws.mgr`.
pub fn check_rectifiable(
    ws: &mut Workspace,
    max_iterations: usize,
    conflict_budget: u64,
) -> Rectifiability {
    // R(X, T) = ∧_j (f_j ≡ g_j), built once.
    let eqs: Vec<ALit> = ws
        .f_outs
        .iter()
        .zip(&ws.g_outs)
        .map(|(&f, &g)| ws.mgr.xnor(f, g))
        .collect();
    let r = {
        let mgr = &mut ws.mgr;
        mgr.and_many(&eqs)
    };

    // A-solver over shared X variables; constraints added per strategy.
    let mut a_solver = Solver::new();
    let x_sat: HashMap<AVar, SLit> =
        ws.x.iter()
            .map(|(_, l)| (l.var(), a_solver.new_var().pos()))
            .collect();

    for _ in 0..max_iterations.max(1) {
        // Propose x*: any X defeating all strategies seen so far.
        let x_star: Vec<(AVar, bool)> = match a_solver.solve_limited(&[], conflict_budget) {
            None => return Rectifiability::Unknown,
            Some(false) => return Rectifiability::Rectifiable,
            Some(true) => {
                ws.x.iter()
                    .map(|(_, l)| {
                        (
                            l.var(),
                            a_solver.model_value(x_sat[&l.var()]) == LBool::True,
                        )
                    })
                    .collect()
            }
        };

        // B-check: ∃T. R(x*, T)?
        let r_fixed = {
            let map: HashMap<AVar, ALit> = x_star
                .iter()
                .map(|&(v, b)| (v, if b { ALit::TRUE } else { ALit::FALSE }))
                .collect();
            ws.mgr.substitute(&[r], &map)[0]
        };
        let mut b_solver = Solver::new();
        let mut b_map: HashMap<AVar, SLit> = HashMap::new();
        let roots = encode_cone(&ws.mgr, &[r_fixed], &mut b_map, &mut b_solver);
        b_solver.add_clause(&[roots[0]]);
        match b_solver.solve_limited(&[], conflict_budget) {
            None => return Rectifiability::Unknown,
            Some(false) => {
                // No strategy completes x*: genuine counterexample.
                let mut cex: Vec<(String, bool)> =
                    ws.x.iter()
                        .zip(&x_star)
                        .map(|((name, _), &(_, b))| (name.clone(), b))
                        .collect();
                cex.sort();
                return Rectifiability::Counterexample(cex);
            }
            Some(true) => {
                // Strategy t*: refine A with ¬R(X, t*).
                let t_star: HashMap<AVar, ALit> = ws
                    .target_vars
                    .iter()
                    .map(|&tv| {
                        let val = b_map
                            .get(&tv)
                            .map(|&sl| b_solver.model_value(sl) == LBool::True)
                            .unwrap_or(false);
                        (tv, if val { ALit::TRUE } else { ALit::FALSE })
                    })
                    .collect();
                let r_strategy = ws.mgr.substitute(&[r], &t_star)[0];
                let mut seed = x_sat.clone();
                let enc = encode_cone(&ws.mgr, &[r_strategy], &mut seed, &mut a_solver);
                a_solver.add_clause(&[!enc[0]]);
            }
        }
    }
    Rectifiability::Unknown
}

/// [`check_rectifiable`] with an optional deterministic solver portfolio.
///
/// When `spec` enables racing and the conflict budget is unlimited, each
/// CEGAR side is raced across the diversified configurations:
///
/// * the **A-side** keeps one *persistent* incremental solver per member
///   — all of them receive the exact same refinement clauses, driven only
///   by configuration-0 models, so configuration 0's trajectory is fully
///   deterministic while helpers merely shortcut the UNSAT
///   (`Rectifiable`) answer;
/// * each **B-check** races fresh solvers over the cofactored cone.
///
/// Both races pin the model-bearing SAT answer to configuration 0
/// ([`ArtifactPolicy::PinSat`]), so every refinement — and therefore the
/// returned verdict and any counterexample — is byte-identical to a
/// single-configuration run. Finite budgets and single-member specs fall
/// through to the plain [`check_rectifiable`] unchanged.
pub fn check_rectifiable_portfolio(
    ws: &mut Workspace,
    max_iterations: usize,
    conflict_budget: u64,
    ctl: &SolveCtl,
    spec: &PortfolioSpec,
    tel: &Telemetry,
) -> Rectifiability {
    if !spec.enabled() || conflict_budget != u64::MAX {
        return check_rectifiable(ws, max_iterations, conflict_budget);
    }
    let eqs: Vec<ALit> = ws
        .f_outs
        .iter()
        .zip(&ws.g_outs)
        .map(|(&f, &g)| ws.mgr.xnor(f, g))
        .collect();
    let r = ws.mgr.and_many(&eqs);

    // One persistent A-solver per member, each with its own X variable
    // numbering but an identical clause sequence.
    let n = spec.members;
    let mut x_sats: Vec<HashMap<AVar, SLit>> = Vec::with_capacity(n);
    let mut a_vec: Vec<Mutex<Solver>> = Vec::with_capacity(n);
    for cfg in spec.configs() {
        let mut s = Solver::with_config(cfg);
        x_sats.push(
            ws.x.iter()
                .map(|(_, l)| (l.var(), s.new_var().pos()))
                .collect(),
        );
        a_vec.push(Mutex::new(s));
    }
    let a_solvers = &a_vec;
    let x_sats = &x_sats;
    let x_order: Vec<AVar> = ws.x.iter().map(|(_, l)| l.var()).collect();

    for _ in 0..max_iterations.max(1) {
        // Propose x*: any X defeating all strategies seen so far.
        let a_out = race(spec, ArtifactPolicy::PinSat, ctl, |i, _cfg, member| {
            let mut s = a_solvers[i].lock().expect("a-solver lock");
            let base = s.stats();
            s.set_ctl(&member.ctl);
            s.set_progress(member.progress);
            let answer = s.solve_limited(&[], u64::MAX);
            let artifact: Vec<(AVar, bool)> = if answer == Some(true) {
                x_order
                    .iter()
                    .map(|&v| (v, s.model_value(x_sats[i][&v]) == LBool::True))
                    .collect()
            } else {
                Vec::new()
            };
            MemberOutcome {
                answer,
                artifact,
                stats: s.stats().delta_since(&base),
            }
        });
        tel.record_solver(&a_out.stats);
        tel.record_portfolio(a_out.answer.map(|_| a_out.winner));
        let x_star: Vec<(AVar, bool)> = match a_out.answer {
            None => return Rectifiability::Unknown,
            Some(false) => return Rectifiability::Rectifiable,
            Some(true) => a_out.artifact.unwrap_or_default(),
        };

        // B-check: ∃T. R(x*, T)?
        let r_fixed = {
            let map: HashMap<AVar, ALit> = x_star
                .iter()
                .map(|&(v, b)| (v, if b { ALit::TRUE } else { ALit::FALSE }))
                .collect();
            ws.mgr.substitute(&[r], &map)[0]
        };
        let mgr = &ws.mgr;
        let target_vars = &ws.target_vars;
        let b_out = race(spec, ArtifactPolicy::PinSat, ctl, |_, cfg, member| {
            let mut b = Solver::with_config(cfg);
            b.set_ctl(&member.ctl);
            b.set_progress(member.progress);
            let mut b_map: HashMap<AVar, SLit> = HashMap::new();
            let roots = encode_cone(mgr, &[r_fixed], &mut b_map, &mut b);
            b.add_clause(&[roots[0]]);
            let answer = b.solve_limited(&[], u64::MAX);
            let artifact: Vec<(AVar, bool)> = if answer == Some(true) {
                target_vars
                    .iter()
                    .map(|&tv| {
                        let val = b_map
                            .get(&tv)
                            .map(|&sl| b.model_value(sl) == LBool::True)
                            .unwrap_or(false);
                        (tv, val)
                    })
                    .collect()
            } else {
                Vec::new()
            };
            MemberOutcome {
                answer,
                artifact,
                stats: b.stats(),
            }
        });
        tel.record_solver(&b_out.stats);
        tel.record_portfolio(b_out.answer.map(|_| b_out.winner));
        match b_out.answer {
            None => return Rectifiability::Unknown,
            Some(false) => {
                // No strategy completes x*: genuine counterexample.
                let mut cex: Vec<(String, bool)> =
                    ws.x.iter()
                        .zip(&x_star)
                        .map(|((name, _), &(_, b))| (name.clone(), b))
                        .collect();
                cex.sort();
                return Rectifiability::Counterexample(cex);
            }
            Some(true) => {
                // Strategy t* (from configuration 0): refine *every*
                // A-solver with the identical ¬R(X, t*) cone.
                let t_star: HashMap<AVar, ALit> = b_out
                    .artifact
                    .unwrap_or_default()
                    .into_iter()
                    .map(|(tv, val)| (tv, if val { ALit::TRUE } else { ALit::FALSE }))
                    .collect();
                let r_strategy = ws.mgr.substitute(&[r], &t_star)[0];
                for (i, slot) in a_vec.iter().enumerate() {
                    let mut s = slot.lock().expect("a-solver lock");
                    let mut seed = x_sats[i].clone();
                    let enc = encode_cone(&ws.mgr, &[r_strategy], &mut seed, &mut *s);
                    s.add_clause(&[!enc[0]]);
                }
            }
        }
    }
    Rectifiability::Unknown
}

/// Re-validates a claimed Eq.-2 universal counterexample with a single
/// B-check: substitutes the named `X` assignment into `R(X, T)` and asks a
/// fresh solver whether *some* target strategy still completes it.
///
/// Returns `Some(true)` when the counterexample is confirmed genuine (no
/// strategy exists), `Some(false)` when it is refuted (a strategy exists,
/// or the assignment is malformed — wrong names or incomplete), and `None`
/// when the conflict budget ran out. The memo cache uses this to cheaply
/// audit a cached `Counterexample` verdict instead of re-running the whole
/// CEGAR loop; a refuted or unknown audit falls back to the full check.
///
/// Builds scratch nodes in `ws.mgr`, so callers pass a throwaway
/// workspace.
pub fn check_rect_cex(
    ws: &mut Workspace,
    cex: &[(String, bool)],
    conflict_budget: u64,
) -> Option<bool> {
    let Some(r_fixed) = rect_cex_cone(ws, cex) else {
        return Some(false);
    };
    let mut b_solver = Solver::new();
    let mut b_map: HashMap<AVar, SLit> = HashMap::new();
    let roots = encode_cone(&ws.mgr, &[r_fixed], &mut b_map, &mut b_solver);
    b_solver.add_clause(&[roots[0]]);
    match b_solver.solve_limited(&[], conflict_budget) {
        None => None,
        Some(false) => Some(true),
        Some(true) => Some(false),
    }
}

/// Builds the `R(x*, T)` cone of a claimed counterexample in `ws.mgr`,
/// or `None` when the assignment is malformed (wrong names/incomplete).
fn rect_cex_cone(ws: &mut Workspace, cex: &[(String, bool)]) -> Option<ALit> {
    let by_name: HashMap<&str, bool> = cex.iter().map(|(n, b)| (n.as_str(), *b)).collect();
    let map: HashMap<AVar, ALit> =
        ws.x.iter()
            .filter_map(|(name, l)| {
                by_name
                    .get(name.as_str())
                    .map(|&b| (l.var(), if b { ALit::TRUE } else { ALit::FALSE }))
            })
            .collect();
    if map.len() != ws.x.len() || by_name.len() != ws.x.len() {
        return None;
    }
    let eqs: Vec<ALit> = ws
        .f_outs
        .iter()
        .zip(&ws.g_outs)
        .map(|(&f, &g)| ws.mgr.xnor(f, g))
        .collect();
    let r = ws.mgr.and_many(&eqs);
    Some(ws.mgr.substitute(&[r], &map)[0])
}

/// [`check_rect_cex`] with an optional deterministic solver portfolio.
/// The audit consumes only the SAT/UNSAT answer (never a model), so any
/// member may win ([`ArtifactPolicy::AnyWinner`]); the answer itself is
/// semantically unique, keeping the result configuration-independent.
pub fn check_rect_cex_portfolio(
    ws: &mut Workspace,
    cex: &[(String, bool)],
    conflict_budget: u64,
    ctl: &SolveCtl,
    spec: &PortfolioSpec,
    tel: &Telemetry,
) -> Option<bool> {
    if !spec.enabled() || conflict_budget != u64::MAX {
        return check_rect_cex(ws, cex, conflict_budget);
    }
    let Some(r_fixed) = rect_cex_cone(ws, cex) else {
        return Some(false);
    };
    let mgr = &ws.mgr;
    let out = race(spec, ArtifactPolicy::AnyWinner, ctl, |_, cfg, member| {
        let mut b = Solver::with_config(cfg);
        b.set_ctl(&member.ctl);
        b.set_progress(member.progress);
        let mut b_map: HashMap<AVar, SLit> = HashMap::new();
        let roots = encode_cone(mgr, &[r_fixed], &mut b_map, &mut b);
        b.add_clause(&[roots[0]]);
        MemberOutcome {
            answer: b.solve_limited(&[], u64::MAX),
            artifact: (),
            stats: b.stats(),
        }
    });
    tel.record_solver(&out.stats);
    tel.record_portfolio(out.answer.map(|_| out.winner));
    out.answer.map(|sat| !sat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EcoInstance;
    use eco_netlist::{parse_verilog, WeightTable};

    fn ws_of(faulty: &str, golden: &str, targets: &[&str]) -> Workspace {
        let inst = EcoInstance::from_netlists(
            "rect",
            &parse_verilog(faulty).expect("faulty"),
            &parse_verilog(golden).expect("golden"),
            targets.iter().map(|s| s.to_string()).collect(),
            &WeightTable::new(1),
        )
        .expect("instance");
        Workspace::new(&inst)
    }

    #[test]
    fn cut_instances_are_rectifiable() {
        let mut ws = ws_of(
            "module f (a, b, c, t, y); input a, b, c, t; output y; \
             xor g1 (y, t, c); endmodule",
            "module g (a, b, c, y); input a, b, c; output y; \
             wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
            &["t"],
        );
        assert!(check_rectifiable(&mut ws, 64, 1 << 20).is_rectifiable());
    }

    #[test]
    fn unpatchable_output_gives_counterexample() {
        // z = a in F but !a in G; t cannot reach z.
        let mut ws = ws_of(
            "module f (a, t, y, z); input a, t; output y, z; \
             buf g1 (y, t); buf g2 (z, a); endmodule",
            "module g (a, y, z); input a; output y, z; \
             buf g1 (y, a); not g2 (z, a); endmodule",
            &["t"],
        );
        match check_rectifiable(&mut ws, 64, 1 << 20) {
            Rectifiability::Counterexample(cex) => {
                assert_eq!(cex.len(), 1);
                assert_eq!(cex[0].0, "a");
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_outputs_unrectifiable() {
        // y1 = t must be a, y2 = !t must be a: impossible for any X.
        let mut ws = ws_of(
            "module f (a, t, y1, y2); input a, t; output y1, y2; \
             buf g1 (y1, t); not g2 (y2, t); endmodule",
            "module g (a, y1, y2); input a; output y1, y2; \
             buf g1 (y1, a); buf g2 (y2, a); endmodule",
            &["t"],
        );
        assert!(matches!(
            check_rectifiable(&mut ws, 64, 1 << 20),
            Rectifiability::Counterexample(_)
        ));
    }

    #[test]
    fn multi_target_rectifiable() {
        let mut ws = ws_of(
            "module f (a, b, t1, t2, y); input a, b, t1, t2; output y; \
             or g1 (y, t1, t2); endmodule",
            "module g (a, b, y); input a, b; output y; \
             xor g1 (y, a, b); endmodule",
            &["t1", "t2"],
        );
        assert!(check_rectifiable(&mut ws, 128, 1 << 20).is_rectifiable());
    }

    #[test]
    fn cex_audit_confirms_and_refutes() {
        // Genuine counterexample from the unpatchable-output instance.
        let mut ws = ws_of(
            "module f (a, t, y, z); input a, t; output y, z; \
             buf g1 (y, t); buf g2 (z, a); endmodule",
            "module g (a, y, z); input a; output y, z; \
             buf g1 (y, a); not g2 (z, a); endmodule",
            &["t"],
        );
        let cex = match check_rectifiable(&mut ws, 64, 1 << 20) {
            Rectifiability::Counterexample(cex) => cex,
            other => panic!("expected counterexample, got {other:?}"),
        };
        assert_eq!(check_rect_cex(&mut ws, &cex, 1 << 20), Some(true));

        // The same assignment against a rectifiable instance is refuted.
        let mut ws2 = ws_of(
            "module f (a, t, y); input a, t; output y; buf g1 (y, t); endmodule",
            "module g (a, y); input a; output y; buf g1 (y, a); endmodule",
            &["t"],
        );
        assert_eq!(check_rect_cex(&mut ws2, &cex, 1 << 20), Some(false));

        // Malformed (wrong names / incomplete) assignments are refuted,
        // never trusted.
        assert_eq!(check_rect_cex(&mut ws, &[], 1 << 20), Some(false));
        assert_eq!(
            check_rect_cex(&mut ws, &[("nope".into(), true)], 1 << 20),
            Some(false)
        );
    }

    #[test]
    fn iteration_budget_reports_unknown() {
        let mut ws = ws_of(
            "module f (a, b, t, y); input a, b, t; output y; \
             and g1 (y, t, a); endmodule",
            "module g (a, b, y); input a, b; output y; \
             and g1 (y, a, b); endmodule",
            &["t"],
        );
        // A tiny iteration budget may fail to converge but must never
        // produce a wrong counterexample on a rectifiable instance.
        for budget in [0usize, 1, 2] {
            let got = check_rectifiable(&mut ws, budget, 1 << 20);
            assert!(
                !matches!(got, Rectifiability::Counterexample(_)),
                "rectifiable instance produced a counterexample at budget {budget}: {got:?}"
            );
        }
        // A generous budget decides it.
        assert!(check_rectifiable(&mut ws, 64, 1 << 20).is_rectifiable());
    }
}
