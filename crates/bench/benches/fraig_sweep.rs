//! Bench for the FRAIG stage (step 1 of the Fig.-1 flow).
//!
//! Every unit is a combined faulty+golden workspace like the engine
//! builds. Cutting several targets plants spuriously-equal candidate
//! pairs whose SAT counterexamples drive multiple refine rounds, so these
//! units exercise the incremental-resimulation hot path rather than the
//! single-round happy path.

use eco_bench::Bench;
use eco_core::{EcoInstance, Workspace};
use eco_fraig::{fraig_classes, FraigOptions};
use eco_netlist::Netlist;
use eco_workgen::{assign_weights, circuits, cut_targets, WeightProfile};

/// Builds the engine-style combined workspace with `n_cuts` targets cut
/// out of `golden` (spread across the wire list for varied cone shapes).
fn combined(golden: &Netlist, n_cuts: usize) -> Workspace {
    let targets: Vec<String> = golden
        .wires
        .iter()
        .rev()
        .step_by(3)
        .take(n_cuts)
        .cloned()
        .collect();
    let faulty = cut_targets(golden, &targets).expect("targets are driven");
    let weights = assign_weights(&faulty, WeightProfile::Unit, 1);
    let inst = EcoInstance::from_netlists("bench", &faulty, golden, targets, &weights)
        .expect("valid instance");
    Workspace::new(&inst)
}

fn main() {
    let units: Vec<(&str, Workspace)> = vec![
        ("datapath10x1", combined(&circuits::shared_datapath(10), 1)),
        ("datapath12x3", combined(&circuits::shared_datapath(12), 3)),
        ("datapath16x4", combined(&circuits::shared_datapath(16), 4)),
        ("mult6x3", combined(&circuits::multiplier(6), 3)),
        ("bshift16x2", combined(&circuits::barrel_shifter(16), 2)),
    ];

    let mut bench = Bench::from_env();
    for (name, ws) in &units {
        bench.run(&format!("sweep/{name}"), || {
            fraig_classes(&ws.mgr, &FraigOptions::default())
        });
    }
    // Fewer stimulus words per round: more spurious buckets survive each
    // round, forcing extra refine rounds (the worst case for full
    // re-simulation).
    let opts = FraigOptions {
        sim_words: 2,
        ..Default::default()
    };
    for (name, ws) in &units {
        bench.run(&format!("sweep_w2/{name}"), || {
            fraig_classes(&ws.mgr, &opts)
        });
    }
    bench.finish();
}
