//! A CDCL SAT solver with incremental assumptions, unsat cores, and
//! optional resolution-interpolant tracking.
//!
//! The design follows MiniSat [Eén & Sörensson, SAT 2003]: two-literal
//! watching, first-UIP conflict analysis, VSIDS decision order, phase
//! saving, and Luby restarts. Two deliberate deviations serve the ECO use
//! case:
//!
//! * every clause — including units — lives in the clause arena and acts as
//!   a propagation *reason*, so every implied literal has a resolution
//!   ancestry;
//! * when interpolation is enabled (see [`Solver::enable_interpolation`]),
//!   each clause carries a partial interpolant in McMillan's system
//!   [McMillan, CAV 2003], maintained through every resolution performed by
//!   conflict analysis (including the implicit resolutions that drop
//!   level-0 literals), so an UNSAT outcome yields a Craig interpolant as
//!   an AIG.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use eco_aig::{Aig, Lit as ALit};

use crate::heap::VarHeap;
use crate::{LBool, Lit, Var};

/// Cooperative controls for long-running solves: an optional wall-clock
/// deadline plus an optional shared cancellation flag.
///
/// Both are polled between Luby restarts (roughly every hundred
/// conflicts), so honoring them costs nothing on the hot propagation
/// path. A solver with the default (empty) controls behaves exactly as
/// before — no clock is ever read.
#[derive(Clone, Debug, Default)]
pub struct SolveCtl {
    /// Wall-clock instant after which budgeted solves return `None`.
    pub deadline: Option<Instant>,
    /// Shared cancellation flag; when set, budgeted solves return `None`.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SolveCtl {
    /// Controls that never fire (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when neither a deadline nor a cancellation flag is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// True once the deadline has passed or the cancellation flag is set.
    pub fn expired(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Tuning knobs for one solver instance: search heuristics (varied by the
/// portfolio to diversify members) and inprocessing schedules/budgets.
///
/// The default configuration reproduces the solver's historical behavior
/// bit-for-bit, except that inprocessing is on (it only engages above
/// [`SolverConfig::inprocess_min_clauses`] clauses, so small instances are
/// untouched).
#[derive(Clone, Debug, PartialEq)]
pub struct SolverConfig {
    /// VSIDS activity decay factor (activity increment grows by `1/decay`
    /// per conflict).
    pub var_decay: f64,
    /// Conflicts per Luby restart unit: restart `i`'s conflict budget is
    /// `luby(i) * restart_interval`. This is also the cooperative-
    /// cancellation poll granularity (see [`SolveCtl`]).
    pub restart_interval: u64,
    /// Initial phase-saving polarity for fresh variables (`false` =
    /// branch negative first, MiniSat's default).
    pub default_polarity: bool,
    /// Branching tie-break seed: `0` leaves initial activities at zero;
    /// any other value assigns each fresh variable a tiny deterministic
    /// activity jitter so equal-activity heap ties break differently per
    /// seed. Purely order-diversifying; never outweighs a real bump.
    pub seed: u64,
    /// Master switch for inter-restart inprocessing (vivification,
    /// subsumption/self-subsumption, and — when [`SolverConfig::bve`] is
    /// set — bounded variable elimination).
    pub inprocessing: bool,
    /// Skip inprocessing entirely below this many stored clauses.
    pub inprocess_min_clauses: usize,
    /// `solve_limited` call count after which the solve-count schedule
    /// first fires. One-shot solvers (a single solve per instance) never
    /// reach the default of 8, so they pay nothing; call sites with long
    /// incremental query streams set `0` to preprocess up front.
    pub inprocess_first_solve: u64,
    /// Run an inprocessing pass every this many `solve_limited` calls
    /// after the first firing (incremental workloads rarely restart, so
    /// conflict-based schedules alone would never fire for them).
    pub inprocess_solve_interval: u64,
    /// Run an inprocessing pass every this many conflicts (fires at Luby
    /// restart boundaries during long searches).
    pub inprocess_conflict_interval: u64,
    /// Per-pass subsumption budget, counted in clause-literal visits.
    pub subsume_budget: u64,
    /// Per-pass vivification budget, counted in probe propagations.
    pub vivify_budget: u64,
    /// Enables bounded variable elimination. Opt-in: BVE only preserves
    /// satisfiability over the *remaining* variables, so a call site must
    /// [`Solver::freeze_var`] every variable it will later mention in an
    /// assumption, a new clause, or a model read. Never runs in
    /// interpolation mode.
    pub bve: bool,
    /// Per-pass BVE budget, counted in resolvent constructions.
    pub bve_budget: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            var_decay: 0.95,
            restart_interval: 100,
            default_polarity: false,
            seed: 0,
            inprocessing: true,
            inprocess_min_clauses: 300,
            inprocess_first_solve: 8,
            inprocess_solve_interval: 256,
            inprocess_conflict_interval: 4000,
            subsume_budget: 200_000,
            vivify_budget: 50_000,
            bve: false,
            bve_budget: 50_000,
        }
    }
}

impl SolverConfig {
    /// The portfolio preset for configuration index `i`. Index 0 is the
    /// default configuration (the single-solver behavior); higher indices
    /// vary VSIDS decay, phase polarity, restart scaling, and the
    /// branching tie-break seed.
    pub fn diversified(i: usize) -> Self {
        let base = SolverConfig::default();
        match i {
            0 => base,
            1 => SolverConfig {
                var_decay: 0.85,
                restart_interval: 150,
                default_polarity: true,
                seed: 1,
                ..base
            },
            2 => SolverConfig {
                var_decay: 0.99,
                restart_interval: 50,
                seed: 2,
                ..base
            },
            3 => SolverConfig {
                var_decay: 0.92,
                restart_interval: 300,
                default_polarity: true,
                seed: 3,
                ..base
            },
            i => SolverConfig {
                seed: i as u64,
                ..base
            },
        }
    }
}

/// Which side of the interpolation partition a clause belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClauseLabel {
    /// The `phi_A` side; the interpolant over-approximates A.
    A,
    /// The `phi_B` side.
    B,
}

/// Aggregate search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Branching decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
    /// Learned clauses deleted by database reduction.
    pub deleted: u64,
    /// Literals removed by conflict-clause minimization.
    pub minimized: u64,
    /// Clauses shortened by inprocessing vivification.
    pub vivified_clauses: u64,
    /// Clauses dropped or strengthened by (self-)subsumption.
    pub subsumed_clauses: u64,
    /// Variables removed by bounded variable elimination.
    pub eliminated_vars: u64,
}

impl SolverStats {
    /// Field-wise difference against an earlier snapshot of the same
    /// solver (saturating), e.g. the spend of one `solve_limited` call on
    /// a persistent incremental solver.
    pub fn delta_since(&self, base: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(base.conflicts),
            decisions: self.decisions.saturating_sub(base.decisions),
            propagations: self.propagations.saturating_sub(base.propagations),
            restarts: self.restarts.saturating_sub(base.restarts),
            learned: self.learned.saturating_sub(base.learned),
            deleted: self.deleted.saturating_sub(base.deleted),
            minimized: self.minimized.saturating_sub(base.minimized),
            vivified_clauses: self.vivified_clauses.saturating_sub(base.vivified_clauses),
            subsumed_clauses: self.subsumed_clauses.saturating_sub(base.subsumed_clauses),
            eliminated_vars: self.eliminated_vars.saturating_sub(base.eliminated_vars),
        }
    }
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.conflicts += rhs.conflicts;
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.restarts += rhs.restarts;
        self.learned += rhs.learned;
        self.deleted += rhs.deleted;
        self.minimized += rhs.minimized;
        self.vivified_clauses += rhs.vivified_clauses;
        self.subsumed_clauses += rhs.subsumed_clauses;
        self.eliminated_vars += rhs.eliminated_vars;
    }
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

struct Clause {
    lits: Vec<Lit>,
    /// Partial interpolant (meaningful only when interpolation is enabled).
    itp: ALit,
    /// Learned (vs original) clause.
    learnt: bool,
    /// Activity for the reduce-DB heuristic.
    activity: f32,
    /// Lazily deleted by [`Solver::reduce_db`]; watchers skip dead clauses.
    dead: bool,
}

struct ItpCtx {
    aig: Aig,
    /// Per SAT variable: does it occur in any B clause?
    var_in_b: Vec<bool>,
    /// Per SAT variable: AIG input literal, for shared (A∩B) variables.
    var_input: Vec<Option<ALit>>,
    /// Memoized interpolants of the derived unit clause of each level-0 var.
    l0_cache: Vec<Option<ALit>>,
    /// Interpolant of the derived empty clause, set on UNSAT.
    final_itp: Option<ALit>,
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use eco_sat::Solver;
/// let mut s = Solver::new();
/// let x = s.new_var();
/// let y = s.new_var();
/// s.add_clause(&[x.pos(), y.pos()]);
/// s.add_clause(&[!x.pos()]);
/// assert_eq!(s.solve(&[]), Some(true));
/// assert_eq!(s.model_value(y.pos()).as_bool(), Some(true));
/// assert_eq!(s.solve(&[y.neg()]), Some(false));
/// assert_eq!(s.unsat_core(), &[y.neg()]);
/// ```
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    polarity: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    heap: VarHeap,
    activity: Vec<f64>,
    var_inc: f64,
    seen: Vec<bool>,
    ok: bool,
    assumptions: Vec<Lit>,
    model: Vec<LBool>,
    core: Vec<Lit>,
    stats: SolverStats,
    itp: Option<ItpCtx>,
    cla_inc: f32,
    /// Learned-clause budget before the next database reduction.
    max_learnts: usize,
    n_learnt_alive: usize,
    /// Cooperative cancellation flag, polled between restarts. Fresh per
    /// solver; [`Solver::set_ctl`] swaps in a shared governor flag.
    interrupt: Arc<AtomicBool>,
    /// Wall-clock deadline, polled between restarts.
    deadline: Option<Instant>,
    config: SolverConfig,
    /// Variables exempt from elimination (assumed/read/re-mentioned by
    /// the caller).
    frozen: Vec<bool>,
    /// Variables removed by BVE; never branched on, asserted absent from
    /// later clauses and assumptions.
    eliminated: Vec<bool>,
    solve_calls: u64,
    next_inprocess_solve: u64,
    next_inprocess_conflicts: u64,
    /// Portfolio progress feed: conflicts spent in the current
    /// `solve_limited` call, published per conflict.
    progress: Option<Arc<AtomicU64>>,
    progress_base: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with the default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        let next_inprocess_conflicts = config.inprocess_conflict_interval;
        let next_inprocess_solve = config.inprocess_first_solve;
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            polarity: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            heap: VarHeap::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            seen: Vec::new(),
            ok: true,
            assumptions: Vec::new(),
            model: Vec::new(),
            core: Vec::new(),
            stats: SolverStats::default(),
            itp: None,
            cla_inc: 1.0,
            max_learnts: 4000,
            n_learnt_alive: 0,
            interrupt: Arc::new(AtomicBool::new(false)),
            deadline: None,
            config,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            solve_calls: 0,
            next_inprocess_solve,
            next_inprocess_conflicts,
            progress: None,
            progress_base: 0,
        }
    }

    /// The solver's configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Marks a variable as off-limits to variable elimination. Required
    /// (with [`SolverConfig::bve`] on) for every variable the caller will
    /// later assume, mention in a new clause, or read from a model.
    pub fn freeze_var(&mut self, v: Var) {
        self.frozen[v.index() as usize] = true;
    }

    /// Installs a shared counter that search publishes its per-call
    /// conflict count into (used by the portfolio runner's deterministic
    /// epoch accounting).
    pub fn set_progress(&mut self, progress: Arc<AtomicU64>) {
        self.progress = Some(progress);
    }

    /// Requests cooperative cancellation: the next inter-restart check in
    /// any ongoing or future budgeted solve returns `None`. The flag
    /// latches; clear it with [`Solver::clear_interrupt`] to reuse the
    /// solver.
    pub fn interrupt(&self) {
        self.interrupt.store(true, Ordering::Relaxed);
    }

    /// Clears the cancellation flag set by [`Solver::interrupt`].
    pub fn clear_interrupt(&self) {
        self.interrupt.store(false, Ordering::Relaxed);
    }

    /// The solver's cancellation flag; share it across threads to interrupt
    /// a solve in flight.
    pub fn interrupt_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.interrupt)
    }

    /// Installs governor controls: a deadline and/or a shared cancellation
    /// flag (which replaces the solver's own flag so one governor latch
    /// stops every enrolled solver).
    pub fn set_ctl(&mut self, ctl: &SolveCtl) {
        self.deadline = ctl.deadline;
        if let Some(c) = &ctl.cancel {
            self.interrupt = Arc::clone(c);
        }
    }

    /// True once the deadline has passed or the cancellation flag is set.
    #[inline]
    fn stopped(&self) -> bool {
        self.interrupt.load(Ordering::Relaxed) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.polarity.push(self.config.default_polarity);
        self.level.push(0);
        self.reason.push(None);
        // A seeded configuration gives every variable a tiny deterministic
        // initial activity so heap ties break in a seed-specific order;
        // the jitter is far below any real VSIDS bump.
        let jitter = if self.config.seed == 0 {
            0.0
        } else {
            let mut z = self
                .config
                .seed
                .wrapping_add(u64::from(v.index()).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 1e-9
        };
        self.activity.push(jitter);
        self.frozen.push(false);
        self.eliminated.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.heap.insert(v, &self.activity);
        if let Some(ctx) = self.itp.as_mut() {
            ctx.var_in_b.push(false);
            ctx.var_input.push(None);
            ctx.l0_cache.push(None);
        }
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of stored clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Search statistics so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Returns `false` once the clause set is known unsatisfiable without
    /// assumptions.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Sets the learned-clause count that triggers the first database
    /// reduction (the budget then grows by 10% per reduction).
    pub fn set_reduce_db_threshold(&mut self, max_learnts: usize) {
        self.max_learnts = max_learnts.max(16);
    }

    /// Switches the solver into interpolation mode.
    ///
    /// `var_in_b[v]` must be true iff variable `v` occurs in some B-labeled
    /// clause; `shared` lists the variables occurring in both partitions,
    /// which become the inputs (in order) of the interpolant AIG.
    ///
    /// Must be called before any clause is added; all clauses must then be
    /// added with [`Solver::add_clause_labeled`], and assumptions are not
    /// supported while in this mode.
    ///
    /// # Panics
    ///
    /// Panics if clauses were already added.
    pub fn enable_interpolation(&mut self, var_in_b: Vec<bool>, shared: &[Var]) {
        assert!(
            self.clauses.is_empty(),
            "interpolation must be enabled before adding clauses"
        );
        let mut aig = Aig::new();
        let mut var_input = vec![None; self.num_vars().max(var_in_b.len())];
        for &v in shared {
            let lit = aig.add_input(format!("s{}", v.index()));
            var_input[v.index() as usize] = Some(lit);
        }
        let n = var_input.len();
        let mut var_in_b = var_in_b;
        var_in_b.resize(n, false);
        self.itp = Some(ItpCtx {
            aig,
            var_in_b,
            var_input,
            l0_cache: vec![None; n],
            final_itp: None,
        });
    }

    /// Returns the interpolant of the empty clause after an UNSAT answer in
    /// interpolation mode, as `(aig, root)`; the AIG inputs correspond to
    /// the `shared` variables passed to [`Solver::enable_interpolation`].
    pub fn interpolant(&self) -> Option<(&Aig, ALit)> {
        let ctx = self.itp.as_ref()?;
        ctx.final_itp.map(|root| (&ctx.aig, root))
    }

    /// Current assignment of a literal (during/after search).
    #[inline]
    pub fn value(&self, lit: Lit) -> LBool {
        self.assigns[lit.var().index() as usize].xor(lit.is_negated())
    }

    /// Value of a literal in the most recent satisfying model.
    pub fn model_value(&self, lit: Lit) -> LBool {
        self.model
            .get(lit.var().index() as usize)
            .copied()
            .unwrap_or(LBool::Undef)
            .xor(lit.is_negated())
    }

    /// The subset of assumptions responsible for the last UNSAT answer.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.core
    }

    /// Adds an unlabeled clause (plain mode).
    ///
    /// Returns `false` if the clause set is now trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if interpolation mode is enabled (use
    /// [`Solver::add_clause_labeled`]).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert!(
            self.itp.is_none(),
            "interpolation mode requires labeled clauses"
        );
        self.add_clause_inner(lits, None)
    }

    /// Adds a clause labeled with its interpolation partition.
    ///
    /// Returns `false` if the clause set is now trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if interpolation mode is not enabled.
    pub fn add_clause_labeled(&mut self, lits: &[Lit], label: ClauseLabel) -> bool {
        assert!(self.itp.is_some(), "enable_interpolation first");
        self.add_clause_inner(lits, Some(label))
    }

    fn leaf_itp(&mut self, lits: &[Lit], label: ClauseLabel) -> ALit {
        let ctx = self.itp.as_mut().expect("itp mode");
        match label {
            ClauseLabel::B => ALit::TRUE,
            ClauseLabel::A => {
                let parts: Vec<ALit> = lits
                    .iter()
                    .filter(|l| ctx.var_in_b[l.var().index() as usize])
                    .map(|l| {
                        let input = ctx.var_input[l.var().index() as usize]
                            .expect("A-clause literal in B must be a shared variable");
                        input.xor_complement(l.is_negated())
                    })
                    .collect();
                ctx.aig.or_many(&parts)
            }
        }
    }

    fn add_clause_inner(&mut self, lits: &[Lit], label: Option<ClauseLabel>) -> bool {
        assert!(
            self.trail_lim.is_empty(),
            "clauses must be added at level 0"
        );
        if !self.ok {
            return false;
        }
        debug_assert!(
            lits.iter()
                .all(|l| !self.eliminated[l.var().index() as usize]),
            "clause mentions an eliminated variable (freeze it before enabling BVE)"
        );
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable_by_key(|l| l.code());
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                // Tautology: dropping it preserves both satisfiability and
                // interpolant validity.
                return true;
            }
        }
        let itp = label.map_or(ALit::FALSE, |lbl| self.leaf_itp(&lits, lbl));
        let cref = self.clauses.len() as u32;

        if lits.is_empty() {
            self.ok = false;
            if let Some(ctx) = self.itp.as_mut() {
                ctx.final_itp = Some(itp);
            }
            return false;
        }

        // Prefer non-false literals in the watch positions.
        let mut k = 0;
        for i in 0..lits.len() {
            if self.value(lits[i]) != LBool::False {
                lits.swap(k, i);
                k += 1;
                if k == 2 {
                    break;
                }
            }
        }
        let n_nonfalse = k;
        self.clauses.push(Clause {
            lits,
            itp,
            learnt: false,
            activity: 0.0,
            dead: false,
        });
        let clause_len = self.clauses[cref as usize].lits.len();

        if clause_len >= 2 {
            self.attach(cref);
        }
        match n_nonfalse {
            0 => {
                // Conflicts with level-0 assignments: derive the empty clause.
                self.finalize_unsat(cref);
                false
            }
            1 => {
                let first = self.clauses[cref as usize].lits[0];
                if self.value(first) == LBool::Undef {
                    self.enqueue(first, Some(cref));
                    // Propagate eagerly so later adds see the consequences.
                    if let Some(confl) = self.propagate() {
                        self.finalize_unsat(confl);
                        return false;
                    }
                }
                true
            }
            _ => true,
        }
    }

    fn attach(&mut self, cref: u32) {
        let c = &self.clauses[cref as usize];
        let (l0, l1) = (c.lits[0], c.lits[1]);
        self.watches[l0.code() as usize].push(Watcher { cref, blocker: l1 });
        self.watches[l1.code() as usize].push(Watcher { cref, blocker: l0 });
    }

    /// Resolves a conflict clause whose literals are all false at level 0
    /// down to the empty clause, recording the final interpolant.
    fn finalize_unsat(&mut self, confl: u32) {
        self.ok = false;
        let mut ctx = match self.itp.take() {
            Some(c) => c,
            None => return,
        };
        let mut itp = self.clauses[confl as usize].itp;
        for j in 0..self.clauses[confl as usize].lits.len() {
            let q = self.clauses[confl as usize].lits[j];
            debug_assert_eq!(self.value(q), LBool::False);
            debug_assert_eq!(self.level[q.var().index() as usize], 0);
            let sub = self.l0_itp(&mut ctx, q.var());
            itp = Self::combine(&mut ctx, itp, sub, q.var());
        }
        ctx.final_itp = Some(itp);
        self.itp = Some(ctx);
    }

    /// Interpolant of the derived unit clause for level-0 variable `v`.
    fn l0_itp(&self, ctx: &mut ItpCtx, v: Var) -> ALit {
        if let Some(x) = ctx.l0_cache[v.index() as usize] {
            return x;
        }
        let end = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for idx in 0..end {
            let x = self.trail[idx].var();
            if ctx.l0_cache[x.index() as usize].is_some() {
                continue;
            }
            let cref =
                self.reason[x.index() as usize].expect("level-0 literal has a reason") as usize;
            let mut t = self.clauses[cref].itp;
            for &q in &self.clauses[cref].lits {
                if q.var() != x {
                    let sub = ctx.l0_cache[q.var().index() as usize]
                        .expect("antecedent precedes in trail");
                    t = Self::combine(ctx, t, sub, q.var());
                }
            }
            ctx.l0_cache[x.index() as usize] = Some(t);
            if x == v {
                break;
            }
        }
        ctx.l0_cache[v.index() as usize].expect("level-0 var reached in trail")
    }

    fn combine(ctx: &mut ItpCtx, a: ALit, b: ALit, pivot: Var) -> ALit {
        if ctx.var_in_b[pivot.index() as usize] {
            ctx.aig.and(a, b)
        } else {
            ctx.aig.or(a, b)
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var().index() as usize;
        self.assigns[v] = LBool::from_bool(!lit.is_negated());
        self.polarity[v] = !lit.is_negated();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level as usize];
        for i in (bound..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.index() as usize] = LBool::Undef;
            self.reason[v.index() as usize] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail.truncate(bound);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn propagate(&mut self) -> Option<u32> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let widx = (!p).code() as usize;
            let mut ws = std::mem::take(&mut self.watches[widx]);
            let false_lit = !p;
            let mut i = 0;
            let mut j = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                i += 1;
                let cref = w.cref as usize;
                if self.clauses[cref].dead {
                    continue; // drop the watcher
                }
                if self.value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.value(first) == LBool::True {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                for k in 2..self.clauses[cref].lits.len() {
                    let lk = self.clauses[cref].lits[k];
                    if self.value(lk) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lk.code() as usize].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'watchers;
                    }
                }
                // Unit or conflicting.
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.value(first) == LBool::False {
                    conflict = Some(w.cref);
                    self.qhead = self.trail.len();
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                } else {
                    self.enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(j);
            self.watches[widx] = ws;
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        let a = &mut self.activity[v.index() as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bump(v, &self.activity);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn bump_clause(&mut self, cref: usize) {
        if !self.clauses[cref].learnt {
            return;
        }
        self.clauses[cref].activity += self.cla_inc;
        if self.clauses[cref].activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn decay_clause_activity(&mut self) {
        self.cla_inc /= 0.999;
    }

    /// Removes clauses satisfied by the top-level (level-0) assignment.
    ///
    /// Sound in interpolation mode too: dropping a clause only weakens the
    /// respective partition, and both directions of the Craig contract are
    /// preserved under weakening. Locked (reason) clauses are kept because
    /// level-0 interpolant chains may still traverse them.
    pub fn simplify(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "simplify only at level 0");
        let locked: std::collections::HashSet<u32> =
            self.reason.iter().flatten().copied().collect();
        for i in 0..self.clauses.len() {
            if self.clauses[i].dead || locked.contains(&(i as u32)) {
                continue;
            }
            let satisfied = self.clauses[i].lits.iter().any(|&l| {
                self.value(l) == LBool::True && self.level[l.var().index() as usize] == 0
            });
            if satisfied {
                self.clauses[i].dead = true;
                if self.clauses[i].learnt {
                    self.n_learnt_alive -= 1;
                }
                self.stats.deleted += 1;
            }
        }
    }

    /// Deletes the lower-activity half of the unlocked learned clauses.
    ///
    /// Deletion is lazy: clauses are marked dead and their watchers are
    /// dropped the next time propagation touches them. Reason ("locked")
    /// clauses are kept — both for propagation correctness and because the
    /// interpolation level-0 chains may revisit them.
    fn reduce_db(&mut self) {
        let mut cands: Vec<usize> = Vec::new();
        let locked: std::collections::HashSet<u32> =
            self.reason.iter().flatten().copied().collect();
        for (i, c) in self.clauses.iter().enumerate() {
            if c.learnt && !c.dead && c.lits.len() > 2 && !locked.contains(&(i as u32)) {
                cands.push(i);
            }
        }
        cands.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &i in cands.iter().take(cands.len() / 2) {
            self.clauses[i].dead = true;
            self.n_learnt_alive -= 1;
            self.stats.deleted += 1;
        }
    }

    /// First-UIP conflict analysis; returns (learned clause, backtrack
    /// level, partial interpolant of the learned clause).
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32, ALit) {
        let mut ictx = self.itp.take();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)];
        let mut cleanup: Vec<Var> = Vec::new();
        let mut path = 0u32;
        let mut idx = self.trail.len();
        let mut cur = confl as usize;
        let mut skip_first = false;
        let dl = self.decision_level();
        let mut itp = ictx.as_ref().map_or(ALit::FALSE, |_| self.clauses[cur].itp);
        loop {
            self.bump_clause(cur);
            let start = usize::from(skip_first);
            for ji in start..self.clauses[cur].lits.len() {
                let q = self.clauses[cur].lits[ji];
                let v = q.var();
                let lvl = self.level[v.index() as usize];
                if lvl == 0 {
                    // Implicit resolution with the level-0 unit chain.
                    if let Some(ctx) = ictx.as_mut() {
                        let sub = self.l0_itp(ctx, v);
                        itp = Self::combine(ctx, itp, sub, v);
                    }
                    continue;
                }
                if !self.seen[v.index() as usize] {
                    self.seen[v.index() as usize] = true;
                    cleanup.push(v);
                    self.bump_var(v);
                    if lvl >= dl {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index() as usize] {
                    break;
                }
            }
            let p = self.trail[idx];
            let v = p.var();
            self.seen[v.index() as usize] = false;
            path -= 1;
            if path == 0 {
                learnt[0] = !p;
                break;
            }
            cur = self.reason[v.index() as usize].expect("UIP-side literal has a reason") as usize;
            debug_assert_eq!(self.clauses[cur].lits[0], p);
            skip_first = true;
            if let Some(ctx) = ictx.as_mut() {
                let r_itp = self.clauses[cur].itp;
                itp = Self::combine(ctx, itp, r_itp, v);
            }
        }
        // Local conflict-clause minimization: a literal is redundant if its
        // reason's other literals are all *still in the clause* (or level
        // 0). Each removal is one more resolution, tracked in the
        // interpolant. The "still in the clause" restriction (rather than
        // MiniSat's "was marked seen") matters for interpolation: allowing
        // a removed literal to justify a later removal re-introduces it in
        // the true resolvent, which the single-combine bookkeeping below
        // would not account for.
        let mut removed: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut kept: Vec<Lit> = Vec::with_capacity(learnt.len());
        kept.push(learnt[0]);
        for &q in &learnt[1..] {
            let v = q.var();
            let redundant = match self.reason[v.index() as usize] {
                None => false,
                Some(r) => self.clauses[r as usize].lits[1..].iter().all(|&l| {
                    (self.seen[l.var().index() as usize] && !removed.contains(&l.var().index()))
                        || self.level[l.var().index() as usize] == 0
                }),
            };
            if redundant {
                self.stats.minimized += 1;
                removed.insert(v.index());
                if let Some(ctx) = ictx.as_mut() {
                    let r = self.reason[v.index() as usize].expect("checked") as usize;
                    // Resolve away q, plus any level-0 literals its reason
                    // introduces.
                    let mut t = Self::combine(ctx, itp, self.clauses[r].itp, v);
                    for j in 1..self.clauses[r].lits.len() {
                        let l = self.clauses[r].lits[j];
                        if self.level[l.var().index() as usize] == 0 {
                            let sub = self.l0_itp(ctx, l.var());
                            t = Self::combine(ctx, t, sub, l.var());
                        }
                    }
                    itp = t;
                }
            } else {
                kept.push(q);
            }
        }
        let mut learnt = kept;
        for v in cleanup {
            self.seen[v.index() as usize] = false;
        }
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index() as usize]
                    > self.level[learnt[max_i].var().index() as usize]
                {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index() as usize]
        };
        self.itp = ictx;
        (learnt, bt, itp)
    }

    /// Computes the failed-assumption core given an assumption `p` that is
    /// false under the current trail.
    fn analyze_final(&mut self, p: Lit) {
        self.core.clear();
        self.core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index() as usize] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i].var();
            if !self.seen[x.index() as usize] {
                continue;
            }
            match self.reason[x.index() as usize] {
                None => self.core.push(self.trail[i]),
                Some(cref) => {
                    let c = &self.clauses[cref as usize];
                    for &l in &c.lits[1..] {
                        if self.level[l.var().index() as usize] > 0 {
                            self.seen[l.var().index() as usize] = true;
                        }
                    }
                }
            }
            self.seen[x.index() as usize] = false;
        }
        self.seen[p.var().index() as usize] = false;
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        loop {
            let v = self.heap.pop(&self.activity)?;
            if self.assigns[v.index() as usize] == LBool::Undef
                && !self.eliminated[v.index() as usize]
            {
                return Some(v.lit(!self.polarity[v.index() as usize]));
            }
        }
    }

    /// Runs search until a result or `budget` conflicts (for this call).
    fn search(&mut self, budget: u64) -> LBool {
        let mut conflicts_here = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_here += 1;
                if let Some(p) = &self.progress {
                    p.store(self.stats.conflicts - self.progress_base, Ordering::Relaxed);
                }
                if self.decision_level() == 0 {
                    self.finalize_unsat(confl);
                    self.core.clear();
                    return LBool::False;
                }
                let (learnt, bt, itp) = self.analyze(confl);
                self.cancel_until(bt);
                let cref = self.clauses.len() as u32;
                let asserting = learnt[0];
                let len = learnt.len();
                self.clauses.push(Clause {
                    lits: learnt,
                    itp,
                    learnt: true,
                    activity: self.cla_inc,
                    dead: false,
                });
                self.stats.learned += 1;
                self.n_learnt_alive += 1;
                if len >= 2 {
                    self.attach(cref);
                }
                self.enqueue(asserting, Some(cref));
                self.decay_var_activity();
                self.decay_clause_activity();
                if self.n_learnt_alive > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts += self.max_learnts / 10;
                }
            } else {
                if conflicts_here >= budget {
                    self.cancel_until(0);
                    return LBool::Undef;
                }
                let mut next = None;
                while (self.decision_level() as usize) < self.assumptions.len() {
                    let p = self.assumptions[self.decision_level() as usize];
                    match self.value(p) {
                        LBool::True => self.new_decision_level(),
                        LBool::False => {
                            self.analyze_final(p);
                            return LBool::False;
                        }
                        LBool::Undef => {
                            next = Some(p);
                            break;
                        }
                    }
                }
                if next.is_none() {
                    next = self.pick_branch();
                    if next.is_none() {
                        self.model = self.assigns.clone();
                        return LBool::True;
                    }
                    self.stats.decisions += 1;
                }
                self.new_decision_level();
                self.enqueue(next.expect("checked above"), None);
            }
        }
    }

    /// Solves under the given assumptions.
    ///
    /// Returns `Some(true)` if satisfiable (see [`Solver::model_value`]),
    /// `Some(false)` if unsatisfiable (see [`Solver::unsat_core`] and, in
    /// interpolation mode, [`Solver::interpolant`]). Returns `None` only
    /// when a deadline or cancellation installed via [`Solver::set_ctl`] /
    /// [`Solver::interrupt`] fires; use [`Solver::solve_limited`] for
    /// conflict-budgeted solving.
    ///
    /// # Panics
    ///
    /// Panics if assumptions are given in interpolation mode.
    pub fn solve(&mut self, assumptions: &[Lit]) -> Option<bool> {
        self.solve_limited(assumptions, u64::MAX)
    }

    /// Solves under assumptions with a conflict budget; `None` on budget
    /// exhaustion, deadline expiry, or cooperative cancellation (see
    /// [`Solver::set_ctl`] and [`Solver::interrupt`]). The deadline and
    /// cancellation flag are polled between Luby restarts, so cancellation
    /// latency is bounded by one restart's conflict budget.
    ///
    /// # Panics
    ///
    /// Panics if assumptions are given in interpolation mode.
    pub fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<bool> {
        assert!(
            assumptions.is_empty() || self.itp.is_none(),
            "assumptions are not supported in interpolation mode"
        );
        if !self.ok {
            self.core.clear();
            return Some(false);
        }
        debug_assert!(
            assumptions
                .iter()
                .all(|l| !self.eliminated[l.var().index() as usize]),
            "assumption over an eliminated variable (freeze it before enabling BVE)"
        );
        self.assumptions = assumptions.to_vec();
        self.solve_calls += 1;
        self.progress_base = self.stats.conflicts;
        self.maybe_inprocess();
        if !self.ok {
            self.core.clear();
            return Some(false);
        }
        let start_conflicts = self.stats.conflicts;
        let mut restart = 0u32;
        loop {
            if self.stopped() {
                self.cancel_until(0);
                return None;
            }
            let budget = (luby(restart) * self.config.restart_interval).max(1);
            let spent = self.stats.conflicts - start_conflicts;
            let budget = budget.min(max_conflicts.saturating_sub(spent).max(1));
            match self.search(budget) {
                LBool::True => {
                    self.cancel_until(0);
                    return Some(true);
                }
                LBool::False => {
                    self.cancel_until(0);
                    return Some(false);
                }
                LBool::Undef => {
                    self.stats.restarts += 1;
                    restart += 1;
                    if self.stats.conflicts - start_conflicts >= max_conflicts {
                        self.cancel_until(0);
                        return None;
                    }
                    self.maybe_inprocess();
                    if !self.ok {
                        self.core.clear();
                        return Some(false);
                    }
                }
            }
        }
    }

    // ---- Inprocessing ----------------------------------------------------
    //
    // Runs between Luby restarts and at `solve_limited` entry (incremental
    // workloads rarely restart, so a conflict-only schedule would never
    // fire for them). Every technique is deterministic — fixed iteration
    // orders, explicit budgets — so inprocessing never perturbs the
    // jobs-independence or portfolio-independence guarantees.
    //
    // Interpolation-mode soundness: dropping a subsumed clause only
    // weakens its partition (same argument as `simplify`), and
    // self-subsumption is one genuine resolution whose interpolant is
    // tracked with a single `combine`. Vivification and variable
    // elimination have no such single-step interpolant bookkeeping, so
    // they are skipped in interpolation mode.

    /// Fires [`Solver::inprocess`] when a schedule is due. Must be called
    /// at decision level 0.
    fn maybe_inprocess(&mut self) {
        if !self.config.inprocessing || !self.ok || !self.trail_lim.is_empty() {
            return;
        }
        let due = self.solve_calls > self.next_inprocess_solve
            || self.stats.conflicts >= self.next_inprocess_conflicts;
        if !due {
            return;
        }
        self.next_inprocess_solve = self.solve_calls + self.config.inprocess_solve_interval;
        self.next_inprocess_conflicts =
            self.stats.conflicts + self.config.inprocess_conflict_interval;
        if self.clauses.len() < self.config.inprocess_min_clauses {
            return;
        }
        self.inprocess();
    }

    /// One inprocessing round: top-level simplification, then
    /// (self-)subsumption, then — outside interpolation mode —
    /// vivification and (if enabled) bounded variable elimination.
    fn inprocess(&mut self) {
        self.simplify();
        self.subsume_pass();
        if self.itp.is_none() && self.ok {
            self.vivify_pass();
            if self.config.bve && self.ok {
                self.bve_pass();
            }
        }
    }

    /// Indices of clauses currently acting as propagation reasons.
    fn locked_clauses(&self) -> std::collections::HashSet<u32> {
        self.reason.iter().flatten().copied().collect()
    }

    /// Adds a clause derived by inprocessing: the interpolant is supplied
    /// (not recomputed from a label) and the learnt flag/activity carry
    /// over from the clause it replaces. Returns `false` if the clause
    /// set became unsatisfiable.
    fn add_derived_clause(&mut self, lits: &[Lit], itp: ALit, learnt: bool, activity: f32) -> bool {
        debug_assert!(self.trail_lim.is_empty());
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable_by_key(|l| l.code());
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return true;
            }
        }
        let cref = self.clauses.len() as u32;
        if lits.is_empty() {
            self.ok = false;
            if let Some(ctx) = self.itp.as_mut() {
                ctx.final_itp = Some(itp);
            }
            return false;
        }
        let mut k = 0;
        for i in 0..lits.len() {
            if self.value(lits[i]) != LBool::False {
                lits.swap(k, i);
                k += 1;
                if k == 2 {
                    break;
                }
            }
        }
        let n_nonfalse = k;
        self.clauses.push(Clause {
            lits,
            itp,
            learnt,
            activity,
            dead: false,
        });
        if learnt {
            self.n_learnt_alive += 1;
        }
        if self.clauses[cref as usize].lits.len() >= 2 {
            self.attach(cref);
        }
        match n_nonfalse {
            0 => {
                self.finalize_unsat(cref);
                false
            }
            1 => {
                let first = self.clauses[cref as usize].lits[0];
                if self.value(first) == LBool::Undef {
                    self.enqueue(first, Some(cref));
                    if let Some(confl) = self.propagate() {
                        self.finalize_unsat(confl);
                        return false;
                    }
                }
                true
            }
            _ => true,
        }
    }

    /// Marks a clause dead, maintaining the learnt-alive count.
    fn kill_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        debug_assert!(!c.dead);
        c.dead = true;
        if c.learnt {
            self.n_learnt_alive -= 1;
        }
    }

    /// Forward subsumption and self-subsumption over the stored clauses,
    /// bounded by [`SolverConfig::subsume_budget`] clause-literal visits.
    ///
    /// Sound in interpolation mode: removing a subsumed clause weakens
    /// its partition; strengthening `D` with subsumer `C` on pivot `l` is
    /// the resolution `C ⊗_l D`, whose interpolant is one `combine`.
    fn subsume_pass(&mut self) {
        const MAX_SUBSUMER_LEN: usize = 20;
        let locked = self.locked_clauses();
        let n_codes = self.assigns.len() * 2;
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); n_codes];
        let mut cands: Vec<u32> = Vec::new();
        for (i, c) in self.clauses.iter().enumerate() {
            if c.dead || c.lits.len() > MAX_SUBSUMER_LEN {
                continue;
            }
            for &l in &c.lits {
                occ[l.code() as usize].push(i as u32);
            }
            cands.push(i as u32);
        }
        // Variable-based signatures so a flipped literal still matches.
        let sig = |lits: &[Lit]| -> u64 {
            lits.iter()
                .fold(0u64, |s, l| s | 1u64 << (l.var().index() % 64))
        };
        let sigs: Vec<u64> = self
            .clauses
            .iter()
            .map(|c| if c.dead { 0 } else { sig(&c.lits) })
            .collect();
        cands.sort_by_key(|&i| self.clauses[i as usize].lits.len());
        let mut budget = self.config.subsume_budget;
        // Scratch marker per literal code, stamped per subsumer.
        let mut mark: Vec<u32> = vec![0; n_codes];
        let mut stamp = 0u32;
        'outer: for &ci in &cands {
            if budget == 0 || !self.ok {
                break;
            }
            if self.clauses[ci as usize].dead {
                continue;
            }
            let c_lits = self.clauses[ci as usize].lits.clone();
            let c_sig = sig(&c_lits);
            stamp += 1;
            for &l in &c_lits {
                mark[l.code() as usize] = stamp;
            }
            // Forward subsumption: scan the occurrence list of C's rarest
            // literal for clauses D ⊇ C.
            let lmin = c_lits
                .iter()
                .copied()
                .min_by_key(|l| occ[l.code() as usize].len())
                .expect("non-empty clause");
            for &di in &occ[lmin.code() as usize] {
                if di == ci || budget == 0 {
                    continue;
                }
                let d = &self.clauses[di as usize];
                if d.dead || d.lits.len() < c_lits.len() || (c_sig & !sigs[di as usize]) != 0 {
                    continue;
                }
                if locked.contains(&di) {
                    continue;
                }
                budget = budget.saturating_sub(d.lits.len() as u64);
                let hits = d
                    .lits
                    .iter()
                    .filter(|l| mark[l.code() as usize] == stamp)
                    .count();
                if hits == c_lits.len() {
                    self.kill_clause(di);
                    self.stats.subsumed_clauses += 1;
                }
            }
            // Self-subsumption: for each literal l of C, a clause D with
            // ¬l whose remaining literals cover C∖{l} loses ¬l.
            for &l in &c_lits {
                if self.clauses[ci as usize].dead {
                    continue 'outer;
                }
                for &di in &occ[(!l).code() as usize] {
                    if budget == 0 {
                        continue 'outer;
                    }
                    let d = &self.clauses[di as usize];
                    if d.dead
                        || d.lits.len() < c_lits.len()
                        || (c_sig & !sigs[di as usize]) != 0
                        || locked.contains(&di)
                    {
                        continue;
                    }
                    budget = budget.saturating_sub(d.lits.len() as u64);
                    let hits = d
                        .lits
                        .iter()
                        .filter(|q| mark[q.code() as usize] == stamp)
                        .count();
                    if hits != c_lits.len() - 1 {
                        continue;
                    }
                    // Resolve C ⊗ D on var(l): the resolvent is D ∖ {¬l}.
                    let new_lits: Vec<Lit> = d.lits.iter().copied().filter(|&q| q != !l).collect();
                    debug_assert_eq!(new_lits.len(), d.lits.len() - 1);
                    let new_itp = if self.itp.is_some() {
                        let mut ctx = self.itp.take().expect("checked");
                        let c_itp = self.clauses[ci as usize].itp;
                        let d_itp = self.clauses[di as usize].itp;
                        let itp = Self::combine(&mut ctx, c_itp, d_itp, l.var());
                        self.itp = Some(ctx);
                        itp
                    } else {
                        ALit::FALSE
                    };
                    let learnt = self.clauses[di as usize].learnt;
                    let act = self.clauses[di as usize].activity;
                    self.kill_clause(di);
                    self.stats.subsumed_clauses += 1;
                    if !self.add_derived_clause(&new_lits, new_itp, learnt, act) {
                        return;
                    }
                }
            }
        }
    }

    /// Clause vivification: for each candidate clause `C`, assume the
    /// negation of a growing prefix of its literals and propagate against
    /// the rest of the formula; an implied/satisfied/falsified outcome
    /// shortens `C`. Equivalence-preserving (the shortened clause is
    /// implied by F∖{C}), so it is safe for later incremental solves
    /// under any assumptions. Plain mode only — the derivation is a
    /// multi-step UP proof with no single-resolution interpolant.
    fn vivify_pass(&mut self) {
        debug_assert!(self.itp.is_none());
        const MAX_VIVIFY_LEN: usize = 32;
        let locked = self.locked_clauses();
        let mut budget = self.config.vivify_budget;
        let cands: Vec<u32> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(i, c)| {
                !c.dead
                    && (3..=MAX_VIVIFY_LEN).contains(&c.lits.len())
                    && !locked.contains(&(*i as u32))
            })
            .map(|(i, _)| i as u32)
            .collect();
        for ci in cands {
            if budget == 0 || !self.ok {
                break;
            }
            if self.clauses[ci as usize].dead {
                continue;
            }
            let lits = self.clauses[ci as usize].lits.clone();
            // Detach C so it cannot propagate in its own probe; probing
            // derives C's replacement from F∖{C}. The arena entry stays
            // dead (watchers drop lazily) and a fresh clause is attached
            // below.
            self.kill_clause(ci);
            let props_before = self.stats.propagations;
            let mut new_lits: Vec<Lit> = Vec::with_capacity(lits.len());
            for &l in &lits {
                match self.value(l) {
                    LBool::True => {
                        // F∖{C} ∧ ¬prefix ⊨ l: prefix ∪ {l} is implied.
                        new_lits.push(l);
                        break;
                    }
                    LBool::False => continue, // l redundant in C
                    LBool::Undef => {
                        new_lits.push(l);
                        self.new_decision_level();
                        self.enqueue(!l, None);
                        if self.propagate().is_some() {
                            // F∖{C} ∧ ¬prefix is contradictory: the
                            // prefix alone is an implied clause.
                            break;
                        }
                    }
                }
            }
            self.cancel_until(0);
            budget = budget.saturating_sub((self.stats.propagations - props_before).max(1));
            if new_lits.len() < lits.len() {
                self.stats.vivified_clauses += 1;
            }
            let learnt = self.clauses[ci as usize].learnt;
            let act = self.clauses[ci as usize].activity;
            if !self.add_derived_clause(&new_lits, ALit::FALSE, learnt, act) {
                break;
            }
        }
    }

    /// Bounded variable elimination (SatELite-style DP resolution) over
    /// unfrozen, unassigned, unassumed variables, with a no-growth rule
    /// and a resolvent-length cap. Eliminating `v` existentially
    /// quantifies it: satisfiability over the remaining variables is
    /// preserved, which is why callers must freeze every variable they
    /// later assume, re-mention, or read (see [`Solver::freeze_var`]).
    /// Plain mode only.
    fn bve_pass(&mut self) {
        debug_assert!(self.itp.is_none());
        const MAX_OCCS: usize = 10;
        const MAX_RESOLVENT_LEN: usize = 24;
        let n_vars = self.assigns.len();
        let mut occ: Vec<Vec<u32>> = vec![Vec::new(); n_vars];
        for (i, c) in self.clauses.iter().enumerate() {
            if c.dead {
                continue;
            }
            for &l in &c.lits {
                occ[l.var().index() as usize].push(i as u32);
            }
        }
        let mut assumed = vec![false; n_vars];
        for l in &self.assumptions {
            assumed[l.var().index() as usize] = true;
        }
        let mut budget = self.config.bve_budget;
        for v in 0..n_vars {
            if budget == 0 || !self.ok {
                break;
            }
            if self.frozen[v] || self.eliminated[v] || assumed[v] || self.assigns[v] != LBool::Undef
            {
                continue;
            }
            let var = Var::new(v as u32);
            let mut pos: Vec<u32> = Vec::new();
            let mut neg: Vec<u32> = Vec::new();
            let mut learnt_occs: Vec<u32> = Vec::new();
            for &ci in &occ[v] {
                let c = &self.clauses[ci as usize];
                if c.dead {
                    continue;
                }
                if c.learnt {
                    learnt_occs.push(ci);
                } else if c.lits.contains(&var.pos()) {
                    pos.push(ci);
                } else {
                    neg.push(ci);
                }
            }
            if pos.is_empty() && neg.is_empty() {
                continue;
            }
            if pos.len() > MAX_OCCS || neg.len() > MAX_OCCS {
                continue;
            }
            // Build all non-tautological resolvents; reject the variable
            // if any is too long or the set grows the clause count.
            let mut resolvents: Vec<Vec<Lit>> = Vec::new();
            let mut reject = false;
            'pairs: for &cp in &pos {
                for &cn in &neg {
                    budget = budget.saturating_sub(1);
                    let mut r: Vec<Lit> = self.clauses[cp as usize]
                        .lits
                        .iter()
                        .copied()
                        .filter(|&l| l != var.pos())
                        .chain(
                            self.clauses[cn as usize]
                                .lits
                                .iter()
                                .copied()
                                .filter(|&l| l != var.neg()),
                        )
                        .collect();
                    r.sort_unstable_by_key(|l| l.code());
                    r.dedup();
                    let taut = r.windows(2).any(|w| w[0].var() == w[1].var());
                    if taut {
                        continue;
                    }
                    if r.len() > MAX_RESOLVENT_LEN {
                        reject = true;
                        break 'pairs;
                    }
                    resolvents.push(r);
                    if resolvents.len() > pos.len() + neg.len() {
                        reject = true;
                        break 'pairs;
                    }
                    if budget == 0 {
                        reject = true;
                        break 'pairs;
                    }
                }
            }
            if reject {
                continue;
            }
            // Commit: drop every clause mentioning v (learnt ones are
            // merely implied, so dropping them is sound), then add the
            // resolvents.
            self.eliminated[v] = true;
            self.stats.eliminated_vars += 1;
            for &ci in pos.iter().chain(neg.iter()).chain(learnt_occs.iter()) {
                self.kill_clause(ci);
                self.stats.deleted += 1;
            }
            for r in resolvents {
                let cref = self.clauses.len() as u32;
                if !self.add_derived_clause(&r, ALit::FALSE, false, 0.0) {
                    return;
                }
                // The resolvent may itself have been dropped (tautology)
                // or appended; register occurrences for later variables.
                if (cref as usize) < self.clauses.len() {
                    for &l in &self.clauses[cref as usize].lits.clone() {
                        occ[l.var().index() as usize].push(cref);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,...).
fn luby(i: u32) -> u64 {
    let mut x = u64::from(i) + 1;
    loop {
        let mut k = 1;
        while (1u64 << k) - 1 < x {
            k += 1;
        }
        if (1u64 << k) - 1 == x {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(d: i32) -> Lit {
        Lit::from_dimacs(d)
    }

    fn vars(s: &mut Solver, n: usize) {
        for _ in 0..n {
            s.new_var();
        }
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        vars(&mut s, 2);
        s.add_clause(&[lit(1), lit(2)]);
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.solve(&[]), Some(true));
        assert_eq!(s.model_value(lit(1)).as_bool(), Some(false));
        assert_eq!(s.model_value(lit(2)).as_bool(), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        vars(&mut s, 1);
        s.add_clause(&[lit(1)]);
        assert!(!s.add_clause(&[lit(-1)]));
        assert_eq!(s.solve(&[]), Some(false));
        assert!(!s.is_ok());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(&[]), Some(false));
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut s = Solver::new();
        vars(&mut s, 1);
        assert!(s.add_clause(&[lit(1), lit(-1)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(&[]), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{ij}: pigeon i in hole j, i in 0..3, j in 0..2.
        let mut s = Solver::new();
        vars(&mut s, 6);
        let p = |i: u32, j: u32| Var::new(i * 2 + j).pos();
        for i in 0..3 {
            s.add_clause(&[p(i, 0), p(i, 1)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve(&[]), Some(false));
    }

    #[test]
    fn assumptions_flip_outcomes() {
        let mut s = Solver::new();
        vars(&mut s, 3);
        s.add_clause(&[lit(1), lit(2)]);
        s.add_clause(&[lit(-2), lit(3)]);
        assert_eq!(s.solve(&[lit(-1), lit(-3)]), Some(false));
        assert_eq!(s.solve(&[lit(-1)]), Some(true));
        assert_eq!(s.model_value(lit(2)).as_bool(), Some(true));
        // Solver stays usable after UNSAT-under-assumptions.
        assert_eq!(s.solve(&[]), Some(true));
    }

    #[test]
    fn unsat_core_is_minimal_here() {
        let mut s = Solver::new();
        vars(&mut s, 4);
        // x1 & x2 -> x3; assume x1, x2, !x3, x4: core should avoid x4.
        s.add_clause(&[lit(-1), lit(-2), lit(3)]);
        assert_eq!(s.solve(&[lit(1), lit(2), lit(-3), lit(4)]), Some(false));
        let core: Vec<i32> = s.unsat_core().iter().map(|l| l.to_dimacs()).collect();
        assert!(core.contains(&-3) || (core.contains(&1) && core.contains(&2)));
        assert!(!core.contains(&4), "core {core:?} should not mention x4");
    }

    #[test]
    fn solve_limited_respects_budget() {
        // A hard-ish pigeonhole to exhaust a tiny budget.
        let mut s = Solver::new();
        let n = 7u32; // 7 pigeons, 6 holes
        let h = n - 1;
        vars(&mut s, (n * h) as usize);
        let p = |i: u32, j: u32| Var::new(i * h + j).pos();
        for i in 0..n {
            let row: Vec<Lit> = (0..h).map(|j| p(i, j)).collect();
            s.add_clause(&row);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        assert_eq!(s.solve_limited(&[], 1), None);
        // And a full solve still works afterwards.
        assert_eq!(s.solve(&[]), Some(false));
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic xorshift generator for reproducibility.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..120 {
            let n = 4 + (next() % 6) as usize; // 4..9 vars
            let m = 3 + (next() % (3 * n as u64)) as usize;
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % n as u64) as u32;
                    c.push(Var::new(v).lit(next() & 1 == 1));
                }
                clauses.push(c);
            }
            // Brute force.
            let mut bf_sat = false;
            'assign: for bits in 0u32..1 << n {
                for c in &clauses {
                    let ok = c.iter().any(|l| {
                        let val = bits >> l.var().index() & 1 == 1;
                        val != l.is_negated()
                    });
                    if !ok {
                        continue 'assign;
                    }
                }
                bf_sat = true;
                break;
            }
            let mut s = Solver::new();
            for _ in 0..n {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            let got = s.solve(&[]);
            assert_eq!(got, Some(bf_sat), "round {round}: clauses {clauses:?}");
            if got == Some(true) {
                // Model must satisfy all clauses.
                for c in &clauses {
                    assert!(
                        c.iter().any(|&l| s.model_value(l) == LBool::True),
                        "model violates {c:?}"
                    );
                }
            }
        }
    }

    fn pigeonhole(n: u32) -> Solver {
        let h = n - 1;
        let mut s = Solver::new();
        vars(&mut s, (n * h) as usize);
        let p = |i: u32, j: u32| Var::new(i * h + j).pos();
        for i in 0..n {
            let row: Vec<Lit> = (0..h).map(|j| p(i, j)).collect();
            s.add_clause(&row);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p(i1, j), !p(i2, j)]);
                }
            }
        }
        s
    }

    #[test]
    fn interrupt_stops_an_unlimited_solve() {
        let mut s = pigeonhole(7);
        s.interrupt();
        assert_eq!(s.solve_limited(&[], u64::MAX), None);
        // The flag latches until cleared; the solver is then reusable.
        assert_eq!(s.solve_limited(&[], u64::MAX), None);
        s.clear_interrupt();
        assert_eq!(s.solve(&[]), Some(false));
    }

    #[test]
    fn expired_deadline_stops_before_searching() {
        let mut s = pigeonhole(7);
        s.set_ctl(&SolveCtl {
            deadline: Some(Instant::now()),
            cancel: None,
        });
        let before = s.stats().conflicts;
        assert_eq!(s.solve_limited(&[], u64::MAX), None);
        assert_eq!(s.stats().conflicts, before, "no search past the deadline");
        s.set_ctl(&SolveCtl::unlimited());
        assert_eq!(s.solve(&[]), Some(false));
    }

    #[test]
    fn shared_cancel_flag_stops_enrolled_solvers() {
        let cancel = Arc::new(AtomicBool::new(false));
        let ctl = SolveCtl {
            deadline: None,
            cancel: Some(Arc::clone(&cancel)),
        };
        let mut s = pigeonhole(7);
        s.set_ctl(&ctl);
        assert_eq!(s.solve(&[]), Some(false), "flag unset: solve runs");
        cancel.store(true, Ordering::Relaxed);
        let mut t = pigeonhole(7);
        t.set_ctl(&ctl);
        assert_eq!(t.solve_limited(&[], u64::MAX), None);
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}

#[cfg(test)]
mod reduce_db_tests {
    use super::*;

    fn pigeonhole_clauses(n: u32) -> (usize, Vec<Vec<Lit>>) {
        let h = n - 1;
        let p = |i: u32, j: u32| Var::new(i * h + j).pos();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..n {
            clauses.push((0..h).map(|j| p(i, j)).collect());
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    clauses.push(vec![!p(i1, j), !p(i2, j)]);
                }
            }
        }
        ((n * h) as usize, clauses)
    }

    /// With an aggressive reduce-DB threshold, the solver still decides
    /// pigeonhole correctly and actually deletes clauses.
    #[test]
    fn reduction_preserves_correctness() {
        let (nv, clauses) = pigeonhole_clauses(7);
        let mut s = Solver::new();
        s.set_reduce_db_threshold(32);
        for _ in 0..nv {
            s.new_var();
        }
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(&[]), Some(false));
        assert!(s.stats().deleted > 0, "stats: {:?}", s.stats());
    }

    /// Minimization removes literals without changing answers on random
    /// instances (cross-checked against brute force).
    #[test]
    fn minimization_agrees_with_brute_force() {
        let mut state = 0x51ed_1234_5678_9abcu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut total_minimized = 0;
        for _ in 0..80 {
            let n = 6 + (next() % 4) as usize;
            let m = 4 * n;
            let clauses: Vec<Vec<Lit>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| Var::new((next() % n as u64) as u32).lit(next() & 1 == 1))
                        .collect()
                })
                .collect();
            let mut bf = false;
            'assign: for bits in 0u32..1 << n {
                for c in &clauses {
                    if !c
                        .iter()
                        .any(|l| (bits >> l.var().index() & 1 == 1) != l.is_negated())
                    {
                        continue 'assign;
                    }
                }
                bf = true;
                break;
            }
            let mut s = Solver::new();
            for _ in 0..n {
                s.new_var();
            }
            for c in &clauses {
                s.add_clause(c);
            }
            assert_eq!(s.solve(&[]), Some(bf));
            total_minimized += s.stats().minimized;
        }
        // Minimization should fire at least occasionally across 80 runs.
        assert!(total_minimized > 0, "minimization never fired");
    }

    /// Interpolation with reduction enabled still yields valid interpolants.
    #[test]
    fn interpolation_survives_reduction() {
        // Pigeonhole split A/B with a tiny threshold.
        let n: u32 = 6;
        let h = n - 1;
        let mut q = crate::ItpSolver::new();
        q.set_reduce_db_threshold(32);
        let vars: Vec<Var> = (0..n * h).map(|_| q.new_var()).collect();
        let p = |i: u32, j: u32| vars[(i * h + j) as usize];
        for i in 0..n {
            let row: Vec<Lit> = (0..h).map(|j| p(i, j).pos()).collect();
            q.add_clause(&row, ClauseLabel::A);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    q.add_clause(&[p(i1, j).neg(), p(i2, j).neg()], ClauseLabel::B);
                }
            }
        }
        let itp = q
            .solve_limited()
            .expect("unbounded")
            .into_interpolant()
            .expect("unsat");
        // Spot-check the contract on random assignments (30 vars is too
        // many for exhaustion): A -> I and I -> !B.
        let mut state = 0xabcdu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let assignment: Vec<bool> = (0..n * h).map(|_| next() & 1 == 1).collect();
            let a_holds = (0..n).all(|i| (0..h).any(|j| assignment[(i * h + j) as usize]));
            let b_holds = (0..h).all(|j| {
                let mut count = 0;
                for i in 0..n {
                    count += assignment[(i * h + j) as usize] as u32;
                }
                count <= 1
            });
            let i_val = itp.eval(&assignment);
            if a_holds {
                assert!(i_val, "A -> I violated");
            }
            if b_holds {
                assert!(!i_val, "I & B satisfiable");
            }
        }
    }
}

#[cfg(test)]
mod simplify_tests {
    use super::*;

    #[test]
    fn simplify_drops_satisfied_clauses() {
        let mut s = Solver::new();
        for _ in 0..4 {
            s.new_var();
        }
        let l = |d: i32| Lit::from_dimacs(d);
        s.add_clause(&[l(1)]); // unit: x1 = true at level 0
        s.add_clause(&[l(1), l(2)]); // satisfied
        s.add_clause(&[l(-2), l(3)]);
        s.add_clause(&[l(2), l(4)]);
        let before = s.stats().deleted;
        s.simplify();
        assert!(s.stats().deleted > before);
        // Still correct afterwards.
        assert_eq!(s.solve(&[]), Some(true));
        assert_eq!(s.solve(&[l(-3), l(2)]), Some(false));
        assert_eq!(s.solve(&[l(-4), l(-2)]), Some(false));
    }

    #[test]
    fn simplify_after_solve_keeps_incremental_sessions_sound() {
        // Random instance: interleave solves, unit additions, simplify.
        let mut state = 0x77u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 8;
        let mut s = Solver::new();
        for _ in 0..n {
            s.new_var();
        }
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for round in 0..30 {
            let c: Vec<Lit> = (0..3)
                .map(|_| Var::new((next() % n as u64) as u32).lit(next() & 1 == 1))
                .collect();
            s.add_clause(&c);
            clauses.push(c);
            if round % 5 == 0 && s.is_ok() {
                s.simplify();
            }
            let got = s.solve(&[]);
            // Brute force.
            let mut bf = false;
            'assign: for bits in 0u32..1 << n {
                for c in &clauses {
                    if !c
                        .iter()
                        .any(|l| (bits >> l.var().index() & 1 == 1) != l.is_negated())
                    {
                        continue 'assign;
                    }
                }
                bf = true;
                break;
            }
            assert_eq!(got, Some(bf), "round {round}");
            if got == Some(false) {
                break;
            }
        }
    }
}
