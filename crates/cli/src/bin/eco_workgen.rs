//! `eco-workgen`: emit synthetic benchmark instances (and batch
//! manifests) to disk.
//!
//! ```text
//! eco-workgen --suite --out bench/              # the 20-unit suite
//! eco-workgen --suite --count 12 --out d/ --manifest d/manifest.toml
//! eco-workgen --fuzz 8 --seed 7 --out d/ --manifest d/batch.toml
//! ```
//!
//! Each emitted case is three files — `<name>_faulty.v`,
//! `<name>_golden.v`, `<name>.weights` — plus, with `--manifest <path>`,
//! an `eco-batch` manifest listing every case with its targets, so a
//! generated directory is directly runnable:
//!
//! ```text
//! eco-batch run d/manifest.toml --jobs 4
//! ```
//!
//! With `--requests <path>`, the same cases are additionally emitted as
//! an `eco-serve` request stream (one JSONL `run` request per case,
//! file paths resolved against `--out` as given — pass an absolute
//! `--out` if the daemon runs elsewhere), the load-generator input for
//! `eco-serve client`:
//!
//! ```text
//! eco-serve --socket /tmp/eco.sock &
//! eco-serve client --socket /tmp/eco.sock --input d/requests.jsonl --timing
//! ```
//!
//! Modes: `--suite` (default; the deterministic Table-2 suite),
//! `--stress` (the six heavier stress units), `--fuzz N` (N seeded
//! random fuzz cases, skipping seeds that generate no cuttable target),
//! `--seq N` (N latch-bearing cases — alternating shift-register banks
//! and random sequential DAGs — each emitted as golden/faulty BTOR2 +
//! latch-BLIF pairs with `.weights` and `.targets` files for `eco-patch
//! --unroll`; the combinational manifest layer does not apply),
//! `--scale <100k|500k|1m>` (two scale AIGs — a deep datapath and a wide
//! random DAG — emitted as binary AIGER `scale_<shape>_<preset>.aig`;
//! these skip the Verilog layer, so no manifest entries are written).
//! `--count N` truncates the emitted list.
//!
//! `--chaos-campaign` runs the deterministic fault-injection campaign
//! instead of emitting cases: `--iters N` in-process fault sweeps (seed
//! `--seed`, default 240) over batch and serve runs with a differential
//! oracle, plus a kill-mid-stream drill that SIGKILLs a real `eco-serve
//! --stdio` daemon and recovers it with `--resume`. `--bench-out
//! <path>` merges recovery metrics into a `BENCH_*.json` file (rows not
//! owned by the campaign are preserved). `--out` is the scratch
//! directory. Exit codes: 0 — ok (campaign: zero crashes, zero wrong
//! answers), 1 — usage, I/O, or campaign failure.

use std::path::PathBuf;
use std::process::ExitCode;

use eco_workgen::fuzz::{gen_case, FuzzConfig};
use eco_workgen::{
    contest_suite, deep_datapath_aig, gen_seq_unit, manifest_toml, request_stream, scale_preset,
    stress_suite, wide_random_aig, write_fuzz_case, write_seq_unit, write_unit, ManifestEntry,
    ScalePreset,
};

#[path = "../chaos_campaign.rs"]
mod chaos_campaign;

const USAGE: &str = "usage: eco-workgen --out <dir> [--suite | --stress | --fuzz N | --seq N | \
--scale <100k|500k|1m>] [--seed S] [--count N] [--manifest <path>] [--requests <path>] [-q]
       eco-workgen --chaos-campaign --out <dir> [--seed S] [--iters N] [--bench-out <path>] [-q]";

enum Mode {
    Suite,
    Stress,
    Fuzz(u64),
    Seq(u64),
    Scale(&'static ScalePreset),
    Chaos,
}

struct Args {
    out: PathBuf,
    mode: Mode,
    seed: u64,
    count: Option<usize>,
    manifest: Option<PathBuf>,
    requests: Option<PathBuf>,
    iters: u64,
    bench_out: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = None;
    let mut mode = Mode::Suite;
    let mut seed = 1u64;
    let mut count = None;
    let mut manifest = None;
    let mut requests = None;
    let mut iters = 240u64;
    let mut bench_out = None;
    let mut quiet = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match a.as_str() {
            "--out" | "-o" => out = Some(PathBuf::from(value("--out")?)),
            "--suite" => mode = Mode::Suite,
            "--stress" => mode = Mode::Stress,
            "--fuzz" => {
                let v = value("--fuzz")?;
                mode = Mode::Fuzz(
                    v.parse()
                        .map_err(|_| format!("--fuzz expects a count, got `{v}`"))?,
                );
            }
            "--seq" => {
                let v = value("--seq")?;
                mode = Mode::Seq(
                    v.parse()
                        .map_err(|_| format!("--seq expects a count, got `{v}`"))?,
                );
            }
            "--scale" => {
                let v = value("--scale")?;
                mode = Mode::Scale(
                    scale_preset(&v)
                        .ok_or_else(|| format!("--scale expects 100k, 500k or 1m, got `{v}`"))?,
                );
            }
            "--seed" => {
                let v = value("--seed")?;
                seed = v
                    .parse()
                    .map_err(|_| format!("--seed expects a number, got `{v}`"))?;
            }
            "--count" => {
                let v = value("--count")?;
                count = Some(
                    v.parse()
                        .map_err(|_| format!("--count expects a number, got `{v}`"))?,
                );
            }
            "--manifest" => manifest = Some(PathBuf::from(value("--manifest")?)),
            "--requests" => requests = Some(PathBuf::from(value("--requests")?)),
            "--chaos-campaign" => mode = Mode::Chaos,
            "--iters" => {
                let v = value("--iters")?;
                iters = v
                    .parse()
                    .map_err(|_| format!("--iters expects a number, got `{v}`"))?;
            }
            "--bench-out" => bench_out = Some(PathBuf::from(value("--bench-out")?)),
            "-q" | "--quiet" => quiet = true,
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let Some(out) = out else {
        return Err(USAGE.to_string());
    };
    Ok(Args {
        out,
        mode,
        seed,
        count,
        manifest,
        requests,
        iters,
        bench_out,
        quiet,
    })
}

fn run(args: &Args) -> Result<(), String> {
    std::fs::create_dir_all(&args.out).map_err(|e| format!("{}: {e}", args.out.display()))?;
    if let Mode::Chaos = args.mode {
        return chaos_campaign::run_campaign(&chaos_campaign::CampaignOptions {
            out: args.out.clone(),
            seed: args.seed,
            iters: args.iters,
            bench_out: args.bench_out.clone(),
            quiet: args.quiet,
        });
    }
    let io_err = |e: std::io::Error| format!("{}: {e}", args.out.display());
    let mut entries: Vec<ManifestEntry> = Vec::new();
    match args.mode {
        Mode::Suite | Mode::Stress => {
            let mut units = match args.mode {
                Mode::Suite => contest_suite(),
                _ => stress_suite(),
            };
            if let Some(n) = args.count {
                units.truncate(n);
            }
            for unit in &units {
                entries.push(write_unit(&args.out, unit).map_err(io_err)?);
            }
        }
        Mode::Scale(preset) => {
            // Scale AIGs bypass the Verilog/manifest layer entirely.
            for (shape, aig) in [
                (
                    "datapath",
                    deep_datapath_aig(preset.inputs, preset.ands, preset.seed),
                ),
                (
                    "randdag",
                    wide_random_aig(preset.inputs, preset.ands, preset.seed),
                ),
            ] {
                let path = args.out.join(format!("scale_{shape}_{}.aig", preset.name));
                std::fs::write(&path, eco_aig::write_aiger_binary(&aig))
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                if !args.quiet {
                    eprintln!(
                        "wrote {} ({} inputs, {} ANDs)",
                        path.display(),
                        aig.num_inputs(),
                        aig.num_ands()
                    );
                }
            }
            return Ok(());
        }
        Mode::Seq(n) => {
            // Sequential cases bypass the combinational manifest layer.
            let mut emitted = 0u64;
            let mut seed = args.seed;
            while emitted < n {
                // One or two targets, alternating; some seeds yield no
                // foldable fault site — advance past them.
                let targets = 1 + (emitted % 2) as usize;
                if let Some(unit) = gen_seq_unit(emitted, seed, targets) {
                    let files = write_seq_unit(&args.out, &unit).map_err(io_err)?;
                    if !args.quiet {
                        eprintln!(
                            "wrote {} ({} latches, {} targets, {} frames, {} files)",
                            unit.name,
                            unit.golden.latches.len(),
                            unit.targets.len(),
                            unit.frames,
                            files.len()
                        );
                    }
                    emitted += 1;
                }
                seed = seed.wrapping_add(1);
            }
            if !args.quiet {
                eprintln!("wrote {emitted} sequential cases to {}", args.out.display());
            }
            return Ok(());
        }
        // Dispatched before the emit path above.
        Mode::Chaos => unreachable!("chaos campaign returned early"),
        Mode::Fuzz(n) => {
            let cfg = FuzzConfig::default();
            let mut emitted = 0u64;
            let mut seed = args.seed;
            // Some seeds yield no cuttable target; advance past them.
            while emitted < n {
                if let Some(case) = gen_case(seed, &cfg) {
                    entries.push(write_fuzz_case(&args.out, &case).map_err(io_err)?);
                    emitted += 1;
                }
                seed = seed.wrapping_add(1);
            }
            if let Some(c) = args.count {
                entries.truncate(c);
            }
        }
    }
    if let Some(path) = &args.manifest {
        std::fs::write(path, manifest_toml(&entries))
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    if let Some(path) = &args.requests {
        std::fs::write(path, request_stream(&args.out, &entries))
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    if !args.quiet {
        eprintln!(
            "wrote {} cases to {}{}",
            entries.len(),
            args.out.display(),
            args.manifest
                .as_ref()
                .map(|p| format!(", manifest {}", p.display()))
                .unwrap_or_default()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}
