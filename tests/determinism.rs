//! Determinism regression: the per-cluster patch-generation stage runs on
//! scoped worker threads when `jobs > 1`, but merges in cluster order, so
//! every `jobs` value must produce *identical* results — same cost, same
//! size, same per-target base sets, byte-identical patch AIG.

mod common;

use eco::core::{BudgetOptions, ClusterDiagnosis, EcoEngine, EcoOptions, EcoOutcome, EcoResult};
use eco::workgen::contest_suite;

fn run_with_jobs(inst: &eco::core::EcoInstance, jobs: usize) -> EcoResult {
    EcoEngine::new(
        inst.clone(),
        EcoOptions {
            jobs,
            ..Default::default()
        },
    )
    .run()
    .expect("rectifiable")
}

fn assert_identical(unit: &str, seq: &EcoResult, par: &EcoResult) {
    assert_eq!(seq.cost, par.cost, "{unit}: cost differs");
    assert_eq!(seq.size, par.size, "{unit}: size differs");
    assert_eq!(
        seq.patches.len(),
        par.patches.len(),
        "{unit}: patch count differs"
    );
    for (a, b) in seq.patches.iter().zip(&par.patches) {
        assert_eq!(a.target, b.target, "{unit}: target order differs");
        assert_eq!(a.base, b.base, "{unit}: base set differs for {}", a.target);
        assert_eq!(
            a.size, b.size,
            "{unit}: patch size differs for {}",
            a.target
        );
    }
    assert_eq!(
        format!("{:?}", seq.patch_aig),
        format!("{:?}", par.patch_aig),
        "{unit}: patch AIG differs structurally"
    );
}

/// Multi-cluster units from the synthetic contest suite, jobs=1 vs jobs=4.
#[test]
fn parallel_patchgen_is_deterministic() {
    let subset = ["unit02", "unit04", "unit06", "unit10", "unit12"];
    let mut checked = 0;
    for unit in contest_suite() {
        if !subset.contains(&unit.spec.name.as_str()) {
            continue;
        }
        let inst = unit.instance().expect("valid instance");
        let seq = run_with_jobs(&inst, 1);
        let par = run_with_jobs(&inst, 4);
        common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &par);
        assert_identical(&unit.spec.name, &seq, &par);
        assert!(
            par.telemetry.jobs >= 1 && par.telemetry.clusters >= 1,
            "{}: telemetry must record the flow shape",
            unit.spec.name
        );
        checked += 1;
    }
    assert_eq!(checked, subset.len(), "suite units went missing");
}

/// Degradation must be jobs-independent too: under a fixed conflict
/// budget (no wall clock), the patched-vs-exhausted cluster split and the
/// merged partial patches are identical for `--jobs 1` and `--jobs 4`,
/// because conflict accounting is worker-local and charged with
/// deterministic SAT conflict counts.
#[test]
fn degradation_is_jobs_independent() {
    let run_governed = |inst: &eco::core::EcoInstance, jobs: usize, conflicts: u64| {
        EcoEngine::new(
            inst.clone(),
            EcoOptions {
                jobs,
                budget: BudgetOptions {
                    timeout: None,
                    cluster_conflicts: Some(conflicts),
                },
                ..Default::default()
            },
        )
        .run_governed()
        .expect("governed runs degrade, they do not error")
    };
    let unit = contest_suite()
        .into_iter()
        .find(|u| u.spec.name == "unit06")
        .expect("unit06 exists");
    let inst = unit.instance().expect("valid instance");
    // A zero allowance exhausts every cluster up front; a generous one
    // completes. Either way jobs=1 and jobs=4 must agree exactly.
    for conflicts in [0, 1 << 30] {
        let seq = run_governed(&inst, 1, conflicts);
        let par = run_governed(&inst, 4, conflicts);
        match (&seq, &par) {
            (EcoOutcome::Complete(a), EcoOutcome::Complete(b)) => {
                assert_identical("unit06-governed", a, b);
            }
            (EcoOutcome::Partial(a), EcoOutcome::Partial(b)) => {
                assert_eq!(a.reason, b.reason, "degradation reason differs");
                assert_eq!(a.clusters.len(), b.clusters.len());
                for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
                    assert_eq!(ca.targets, cb.targets, "cluster order differs");
                    assert_eq!(
                        ca.diagnosis, cb.diagnosis,
                        "diagnosis differs for {:?}",
                        ca.targets
                    );
                }
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.size, b.size);
                assert_eq!(
                    format!("{:?}", a.patch_aig),
                    format!("{:?}", b.patch_aig),
                    "partial patch AIG differs structurally"
                );
            }
            _ => panic!("jobs=1 and jobs=4 disagree on complete-vs-partial"),
        }
        if conflicts == 0 {
            let EcoOutcome::Partial(p) = &seq else {
                panic!("a zero allowance must degrade");
            };
            assert!(p
                .clusters
                .iter()
                .all(|c| c.diagnosis == ClusterDiagnosis::BudgetExhausted));
        } else {
            assert!(
                matches!(seq, EcoOutcome::Complete(_)),
                "a generous allowance must complete"
            );
        }
    }
}

fn run_with_portfolio(inst: &eco::core::EcoInstance, portfolio: usize, jobs: usize) -> EcoResult {
    EcoEngine::new(
        inst.clone(),
        EcoOptions {
            portfolio,
            jobs,
            // Exercise the 2QBF CEGAR races too, not just the miters.
            precheck_rectifiability: true,
            ..Default::default()
        },
    )
    .run()
    .expect("rectifiable")
}

/// The deterministic solver portfolio must be invisible in the results:
/// `--portfolio 1` and `--portfolio 4` (and repeated `--portfolio 4`
/// runs, and portfolio × jobs combinations) produce byte-identical
/// patches.
#[test]
fn portfolio_is_deterministic() {
    let subset = ["unit04", "unit06"];
    let mut checked = 0;
    for unit in contest_suite() {
        if !subset.contains(&unit.spec.name.as_str()) {
            continue;
        }
        let inst = unit.instance().expect("valid instance");
        let single = run_with_portfolio(&inst, 1, 1);
        let raced = run_with_portfolio(&inst, 4, 1);
        let raced_again = run_with_portfolio(&inst, 4, 1);
        let raced_parallel = run_with_portfolio(&inst, 4, 4);
        common::assert_patched_equals_golden(&unit.faulty, &unit.golden, &raced);
        assert_identical(&unit.spec.name, &single, &raced);
        assert_identical(&unit.spec.name, &raced, &raced_again);
        assert_identical(&unit.spec.name, &raced, &raced_parallel);
        assert_eq!(
            single.telemetry.portfolio_launches, 0,
            "{}: a single-member spec must never race",
            unit.spec.name
        );
        assert!(
            raced.telemetry.portfolio_launches >= 1,
            "{}: unlimited-budget queries must race at portfolio 4",
            unit.spec.name
        );
        checked += 1;
    }
    assert_eq!(checked, subset.len(), "suite units went missing");
}

/// A starved (or finite) governor budget must not interact with the
/// portfolio: finite-budget queries are never raced, so the degradation
/// split and partial patches agree exactly across `--portfolio` values.
#[test]
fn portfolio_starved_governor_is_deterministic() {
    let run_governed = |inst: &eco::core::EcoInstance, portfolio: usize, conflicts: u64| {
        EcoEngine::new(
            inst.clone(),
            EcoOptions {
                portfolio,
                budget: BudgetOptions {
                    timeout: None,
                    cluster_conflicts: Some(conflicts),
                },
                ..Default::default()
            },
        )
        .run_governed()
        .expect("governed runs degrade, they do not error")
    };
    let unit = contest_suite()
        .into_iter()
        .find(|u| u.spec.name == "unit06")
        .expect("unit06 exists");
    let inst = unit.instance().expect("valid instance");
    for conflicts in [0, 1 << 30] {
        let single = run_governed(&inst, 1, conflicts);
        let raced = run_governed(&inst, 4, conflicts);
        match (&single, &raced) {
            (EcoOutcome::Complete(a), EcoOutcome::Complete(b)) => {
                assert_identical("unit06-portfolio-governed", a, b);
            }
            (EcoOutcome::Partial(a), EcoOutcome::Partial(b)) => {
                assert_eq!(a.reason, b.reason, "degradation reason differs");
                assert_eq!(a.clusters.len(), b.clusters.len());
                for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
                    assert_eq!(ca.targets, cb.targets, "cluster order differs");
                    assert_eq!(ca.diagnosis, cb.diagnosis);
                }
                assert_eq!(a.cost, b.cost);
                assert_eq!(a.size, b.size);
                assert_eq!(
                    format!("{:?}", a.patch_aig),
                    format!("{:?}", b.patch_aig),
                    "partial patch AIG differs structurally"
                );
            }
            _ => panic!("portfolio 1 and 4 disagree on complete-vs-partial"),
        }
        // Finite allowances must bypass the race machinery entirely.
        let launches = match &raced {
            EcoOutcome::Complete(r) => r.telemetry.portfolio_launches,
            EcoOutcome::Partial(p) => p.telemetry.portfolio_launches,
        };
        assert_eq!(launches, 0, "finite budgets must never race");
    }
}

/// The sequential flow (`eco-patch --unroll`) must be jobs-invariant
/// end to end: the unrolled combinational stage runs on worker threads,
/// but the folded sequential patch — and the emitted BTOR2 of the
/// patched design — is byte-identical for every `jobs` value.
#[test]
fn unrolled_seq_eco_is_jobs_invariant() {
    use eco::core::EcoOptions;
    use eco::seq::{write_btor2, SeqEcoEngine, SeqEcoOptions};
    use eco::workgen::gen_seq_unit;

    let unit = (0..64)
        .find_map(|s| gen_seq_unit(0, s, 1))
        .expect("some seed yields a unit");
    let run = |jobs: usize| {
        SeqEcoEngine::new(
            unit.faulty.clone(),
            unit.golden.clone(),
            unit.targets.clone(),
            unit.weights.clone(),
            SeqEcoOptions {
                frames: unit.frames,
                eco: EcoOptions {
                    jobs,
                    ..Default::default()
                },
            },
        )
        .expect("valid engine")
        .run()
        .expect("rectifiable by construction")
    };
    let seq = run(1);
    let par = run(4);
    assert_eq!(seq.cost, par.cost, "seq ECO cost differs across jobs");
    assert_eq!(seq.size, par.size, "seq ECO size differs across jobs");
    assert_eq!(seq.fold_frames, par.fold_frames, "fold frames differ");
    assert_eq!(
        write_btor2(&seq.patched),
        write_btor2(&par.patched),
        "patched BTOR2 output is not byte-identical across jobs"
    );
}

/// `jobs: 0` (auto) must agree with explicit sequential execution too.
#[test]
fn auto_jobs_matches_sequential() {
    for unit in contest_suite() {
        if unit.spec.name != "unit06" {
            continue;
        }
        let inst = unit.instance().expect("valid instance");
        let seq = run_with_jobs(&inst, 1);
        let auto = run_with_jobs(&inst, 0);
        assert_identical(&unit.spec.name, &seq, &auto);
    }
}
