//! Graphviz DOT export for debugging and documentation figures.

use std::fmt::Write as _;

use crate::{Aig, Node};

impl Aig {
    /// Renders the reachable part of the AIG as a Graphviz `digraph`.
    ///
    /// Inverted edges are drawn dashed. Only logic in the transitive fanin
    /// of the outputs is emitted.
    pub fn to_dot(&self, name: &str) -> String {
        let roots: Vec<_> = self.outputs().iter().map(|o| o.lit).collect();
        let cone = self.cone_vars(&roots);
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{name}\" {{");
        let _ = writeln!(s, "  rankdir=BT;");
        for v in &cone {
            match self.node(*v) {
                Node::Constant => {
                    let _ = writeln!(s, "  n{} [label=\"0\", shape=box];", v.index());
                }
                Node::Input { pos } => {
                    let _ = writeln!(
                        s,
                        "  n{} [label=\"{}\", shape=triangle];",
                        v.index(),
                        self.input_name(pos as usize)
                    );
                }
                Node::And { fan0, fan1 } => {
                    let _ = writeln!(s, "  n{} [label=\"∧\", shape=ellipse];", v.index());
                    for f in [fan0, fan1] {
                        let style = if f.is_complement() {
                            " [style=dashed]"
                        } else {
                            ""
                        };
                        let _ = writeln!(s, "  n{} -> n{}{};", f.var().index(), v.index(), style);
                    }
                }
            }
        }
        for (i, out) in self.outputs().iter().enumerate() {
            let _ = writeln!(s, "  o{i} [label=\"{}\", shape=invtriangle];", out.name);
            let style = if out.lit.is_complement() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(s, "  n{} -> o{i}{};", out.lit.var().index(), style);
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, !b);
        aig.add_output("f", f);
        let dot = aig.to_dot("t");
        assert!(dot.starts_with("digraph \"t\""));
        assert!(dot.contains("triangle"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("invtriangle"));
    }
}
