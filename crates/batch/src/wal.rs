//! Batch write-ahead journal and resume: every job is journaled before
//! execution and its record after, so `eco-batch --resume` replays a
//! killed run without recomputing completed jobs.
//!
//! The journal (`<dir>/batch.wal`) uses the workspace-wide checksummed
//! record log ([`eco_core::LogWriter`]), so a SIGKILL mid-append leaves
//! at worst a torn tail the loader discards. Records are keyed by a
//! *content* fingerprint of the job ([`job_fingerprint`]: pass, index,
//! name, budget, and both circuits' structural fingerprints + targets),
//! so a resume against an edited manifest recomputes exactly the jobs
//! whose inputs changed. A `done` record stores the job's JSONL line
//! verbatim; replayed records therefore reproduce the uninterrupted
//! report byte for byte.
//!
//! Journal IO failures degrade durability, never the batch: they are
//! counted ([`BatchJournal::append_errors`]) and execution continues.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use eco_aig::FpHasher;
use eco_core::{read_log, LogStats, LogWriter};

use crate::report::{record_from_json, record_json};
use crate::runner::{BatchJob, JobRecord};

/// Magic prefix of `batch.wal` files.
pub const BATCH_WAL_MAGIC: [u8; 8] = *b"ECOBWAL1";

const REC_ADMIT: u8 = 1;
const REC_DONE: u8 = 2;

/// Content fingerprint identifying one job slot of one pass: the resume
/// dedup key. Covers the pass, index, name, per-job budget, and — for
/// loadable jobs — both circuits' structural fingerprints plus the
/// target list (for broken jobs, the load error text), so editing an
/// input between crash and resume forces that job to recompute.
pub fn job_fingerprint(pass: usize, index: usize, job: &BatchJob) -> u128 {
    let mut h = FpHasher::new();
    h.word(0xba7c_4a1d); // domain tag: batch WAL fingerprints
    h.word(pass as u64);
    h.word(index as u64);
    h.str(&job.name);
    h.word(job.budget.unwrap_or(u64::MAX));
    match &job.source {
        Ok(inst) => {
            for fp in [
                inst.faulty.structural_fingerprint(),
                inst.golden.structural_fingerprint(),
            ] {
                h.word(fp.0 as u64);
                h.word((fp.0 >> 64) as u64);
                h.word(fp.1 as u64);
                h.word((fp.1 >> 64) as u64);
            }
            h.word(inst.targets.len() as u64);
            for t in &inst.targets {
                h.str(t);
            }
        }
        Err(msg) => {
            h.str("load-error");
            h.str(msg);
        }
    }
    h.finish().0
}

/// Append handle on a batch run's WAL.
#[derive(Debug)]
pub struct BatchJournal {
    log: Mutex<LogWriter>,
    appended: AtomicU64,
    append_errors: AtomicU64,
}

impl BatchJournal {
    /// Opens (creating if needed) `<dir>/batch.wal` for appending.
    pub fn open(dir: &Path) -> std::io::Result<BatchJournal> {
        std::fs::create_dir_all(dir)?;
        let log = LogWriter::open_append(&dir.join("batch.wal"), &BATCH_WAL_MAGIC)?;
        Ok(BatchJournal {
            log: Mutex::new(log),
            appended: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
        })
    }

    /// Journals that a job is about to execute.
    pub fn admit(&self, fp: u128) {
        let mut payload = vec![REC_ADMIT];
        payload.extend_from_slice(&fp.to_le_bytes());
        self.append(&payload);
    }

    /// Journals a completed job record (its JSONL line, verbatim).
    pub fn done(&self, fp: u128, record: &JobRecord) {
        let mut payload = vec![REC_DONE];
        payload.extend_from_slice(&fp.to_le_bytes());
        payload.extend_from_slice(record_json(record).as_bytes());
        self.append(&payload);
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Appends that failed (journaling degraded, the batch continued).
    pub fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }

    fn append(&self, payload: &[u8]) {
        match self.lock_log().append(payload) {
            Ok(()) => {
                self.appended.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn lock_log(&self) -> MutexGuard<'_, LogWriter> {
        // A panic mid-append leaves at most a torn tail, which the
        // loader discards; the writer handle stays valid.
        self.log.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// What a journal load recovered.
#[derive(Debug, Default)]
pub struct BatchJournalState {
    /// Completed records by job fingerprint (replayed verbatim on
    /// resume).
    pub done: HashMap<u128, JobRecord>,
    /// `admit` records seen (jobs that had started; informational).
    pub admitted: u64,
    /// Raw log framing stats (torn tails, discarded bytes).
    pub log: LogStats,
    /// Structurally invalid payloads skipped.
    pub bad_records: u64,
}

/// Loads `<dir>/batch.wal`. A missing journal is an empty state; torn
/// or corrupt frames and undecodable payloads are skipped and counted.
pub fn load_journal(dir: &Path) -> std::io::Result<BatchJournalState> {
    let (records, log) = read_log(&dir.join("batch.wal"), &BATCH_WAL_MAGIC)?;
    let mut state = BatchJournalState {
        log,
        ..Default::default()
    };
    for payload in records {
        if payload.len() < 17 {
            state.bad_records += 1;
            continue;
        }
        let fp = u128::from_le_bytes(payload[1..17].try_into().expect("17-byte prefix checked"));
        match payload[0] {
            REC_ADMIT => state.admitted += 1,
            REC_DONE => match std::str::from_utf8(&payload[17..])
                .ok()
                .and_then(|line| record_from_json(line).ok())
            {
                Some(record) => {
                    state.done.insert(fp, record);
                }
                None => state.bad_records += 1,
            },
            _ => state.bad_records += 1,
        }
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::JobStatus;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eco_batch_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(index: usize) -> JobRecord {
        JobRecord {
            pass: 0,
            index,
            name: format!("job{index}"),
            status: JobStatus::Complete,
            targets: 1,
            patches: 1,
            cost: 5,
            size: 3,
            verified: true,
            detail: String::new(),
        }
    }

    #[test]
    fn journal_round_trips_admit_and_done() {
        let dir = tmpdir("roundtrip");
        let journal = BatchJournal::open(&dir).expect("open");
        journal.admit(7);
        journal.done(7, &record(0));
        journal.admit(9); // admitted, never finished (the crash victim)
        assert_eq!(journal.appended(), 3);
        assert_eq!(journal.append_errors(), 0);
        drop(journal);
        let state = load_journal(&dir).expect("load");
        assert_eq!(state.admitted, 2);
        assert_eq!(state.bad_records, 0);
        assert_eq!(state.done.len(), 1);
        assert_eq!(state.done.get(&7), Some(&record(0)));
        assert!(!state.done.contains_key(&9));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_empty() {
        let dir = tmpdir("missing");
        let state = load_journal(&dir).expect("load");
        assert_eq!(state.admitted, 0);
        assert!(state.done.is_empty());
    }

    #[test]
    fn garbage_payloads_are_counted_not_fatal() {
        let dir = tmpdir("garbage");
        std::fs::create_dir_all(&dir).expect("dir");
        let mut log = LogWriter::create(&dir.join("batch.wal"), &BATCH_WAL_MAGIC).expect("create");
        log.append(b"short").expect("append");
        log.append(b"\x09sixteen-bytes!!!unknown-tag")
            .expect("append");
        drop(log);
        let state = load_journal(&dir).expect("load");
        assert_eq!(state.bad_records, 2);
        assert!(state.done.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_separate_slots_and_content() {
        let inst = || {
            use eco_netlist::{parse_verilog, WeightTable};
            eco_core::EcoInstance::from_netlists(
                "fp",
                &parse_verilog(
                    "module f (a, b, c, t, y); input a, b, c, t; output y; \
                     xor g1 (y, t, c); endmodule",
                )
                .expect("faulty"),
                &parse_verilog(
                    "module g (a, b, c, y); input a, b, c; output y; \
                     wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
                )
                .expect("golden"),
                vec!["t".into()],
                &WeightTable::new(1),
            )
            .expect("instance")
        };
        let job = BatchJob::from_instance("a", inst());
        assert_eq!(job_fingerprint(0, 0, &job), job_fingerprint(0, 0, &job));
        assert_ne!(
            job_fingerprint(0, 0, &job),
            job_fingerprint(1, 0, &job),
            "pass is part of the key"
        );
        assert_ne!(
            job_fingerprint(0, 0, &job),
            job_fingerprint(0, 1, &job),
            "index is part of the key"
        );
        let broken = BatchJob {
            name: "a".into(),
            source: Err("no such file".into()),
            budget: None,
        };
        assert_ne!(
            job_fingerprint(0, 0, &job),
            job_fingerprint(0, 0, &broken),
            "content is part of the key"
        );
    }
}
