//! Simulation-guided SAT sweeping: the FRAIG equivalence-class engine.
//!
//! The hot path is built on the allocation-free simulation engine of
//! `eco-aig`: candidate classes are bucketed by 128-bit canonical-word
//! [fingerprints](SimVectors::fingerprint) (full-word comparison only on
//! fingerprint collision), and counterexamples from failed SAT queries are
//! appended to an [`IncrementalSim`] arena so each refine round
//! re-simulates only the new stimulus columns.

use std::collections::{HashMap, HashSet};

use eco_aig::{Aig, IncrementalSim, Lit as ALit, SimVectors, SplitMix64, Var as AVar};
use eco_sat::{encode_cone, LBool, Lit as SLit, SolveCtl, Solver, SolverStats};

use crate::uf::ParityUnionFind;

/// Knobs for the sweeping loop.
#[derive(Clone, Debug)]
pub struct FraigOptions {
    /// 64-pattern words of random base stimulus.
    pub sim_words: usize,
    /// Seed for the deterministic stimulus generator.
    pub seed: u64,
    /// Maximum refine/verify rounds.
    pub max_rounds: usize,
    /// Conflict budget per equivalence query (timeouts count as
    /// "not proven", which is sound).
    pub conflict_budget: u64,
    /// Total conflict allowance across the whole sweep: the per-query
    /// budget is capped at what remains, and once spent the sweep stops
    /// early (pending candidates stay unproven, which is sound).
    pub max_total_conflicts: u64,
    /// Cooperative cancellation/deadline control for the sweep's solver;
    /// once it fires, remaining queries are abandoned and the sweep
    /// returns the classes proven so far.
    pub ctl: SolveCtl,
}

impl Default for FraigOptions {
    fn default() -> Self {
        FraigOptions {
            sim_words: 8,
            seed: 0x5eed_cafe,
            max_rounds: 16,
            conflict_budget: 10_000,
            max_total_conflicts: u64::MAX,
            ctl: SolveCtl::unlimited(),
        }
    }
}

/// One proven equivalence class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivClass {
    /// Class representative (the lowest, hence topologically earliest, var).
    pub repr: AVar,
    /// All members with their phase relative to `repr`
    /// (`true` = complemented). Includes `repr` itself with phase `false`.
    pub members: Vec<(AVar, bool)>,
}

/// The result of a FRAIG sweep: SAT-proven equivalence classes.
#[derive(Clone, Debug, Default)]
pub struct EquivClasses {
    /// Non-trivial classes (at least two members), ordered by representative.
    pub classes: Vec<EquivClass>,
    repr_of: HashMap<AVar, (AVar, bool)>,
}

impl EquivClasses {
    /// Returns `(repr, phase)` for `v` — `v ≡ repr ^ phase` — if `v`
    /// belongs to a non-trivial class.
    pub fn repr(&self, v: AVar) -> Option<(AVar, bool)> {
        self.repr_of.get(&v).copied()
    }

    /// Returns `Some(phase)` if `a ≡ b ^ phase` is proven.
    pub fn equivalent(&self, a: AVar, b: AVar) -> Option<bool> {
        if a == b {
            return Some(false);
        }
        let (ra, pa) = self.repr_of.get(&a).copied()?;
        let (rb, pb) = self.repr_of.get(&b).copied()?;
        (ra == rb).then_some(pa ^ pb)
    }

    /// Number of non-trivial classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Returns `true` if no non-trivial class was found.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Counters describing one FRAIG sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Refine/verify rounds executed.
    pub rounds: usize,
    /// SAT equivalence queries issued.
    pub sat_calls: u64,
    /// Queries proven (pair merged into a class).
    pub proven: u64,
    /// Queries disproven by a counterexample.
    pub disproved: u64,
    /// Queries abandoned at the conflict budget (left unproven).
    pub budgeted_out: u64,
    /// Counterexample patterns fed back into simulation.
    pub cex_patterns: u64,
    /// Activation literals retired (level-0 unit added after the query so
    /// `simplify` can drop the query clauses instead of leaking them).
    pub retired_activations: u64,
    /// Word-columns the simulation engine actually computed.
    pub resim_columns: u64,
    /// Word-columns skipped by incremental re-simulation (vs a full
    /// per-round re-simulation of every column).
    pub resim_columns_saved: u64,
    /// Non-trivial classes in the final result.
    pub classes: usize,
    /// Total members across those classes.
    pub class_members: usize,
    /// Aggregated search statistics of the sweep's SAT solver.
    pub sat: SolverStats,
}

/// Runs simulation-guided SAT sweeping over the cones of all outputs of
/// `aig` and returns the proven equivalence classes.
///
/// The loop alternates (a) hashing nodes by canonical simulation
/// fingerprint into candidate classes and (b) SAT-verifying candidates
/// against their class representative; counterexamples are appended as new
/// simulation columns, splitting spurious candidates in the next round.
///
/// Only *proven* equivalences are reported, so the result is sound even
/// when the per-query conflict budget truncates verification.
pub fn fraig_classes(aig: &Aig, opts: &FraigOptions) -> EquivClasses {
    fraig_classes_stats(aig, opts).0
}

/// A memo store for whole-sweep results, keyed by the structural
/// fingerprint of the swept AIG (plus the sweep options).
///
/// Implementations are shared across threads; `lookup` must only return
/// entries whose independent `check` digest matches, so a key collision
/// (or poisoned entry) degrades to a miss and the sweep runs fresh.
/// Because the sweep is deterministic in `(aig, opts)`, a hit returns
/// byte-for-byte what a fresh sweep would compute — memoization changes
/// time, never results.
pub trait SweepMemo: Sync {
    /// Returns the memoized `(classes, stats)` for `(key, check)`, if any.
    fn lookup_sweep(&self, key: u128, check: u128) -> Option<(EquivClasses, SweepStats)>;
    /// Stores a freshly computed sweep result under `(key, check)`.
    fn store_sweep(&self, key: u128, check: u128, classes: &EquivClasses, stats: &SweepStats);
}

/// Dual fingerprint identifying one sweep: the AIG's structural identity
/// mixed with every option knob that can change the sweep's result.
pub fn sweep_fingerprint(aig: &Aig, opts: &FraigOptions) -> (u128, u128) {
    let (skey, scheck) = aig.structural_fingerprint();
    let mut h = eco_aig::FpHasher::new();
    h.word(0x5eed_50ee); // domain tag: sweep memo entries
    h.word(skey as u64);
    h.word((skey >> 64) as u64);
    h.word(scheck as u64);
    h.word((scheck >> 64) as u64);
    h.word(opts.sim_words as u64);
    h.word(opts.seed);
    h.word(opts.max_rounds as u64);
    h.word(opts.conflict_budget);
    h.word(opts.max_total_conflicts);
    h.finish()
}

/// Like [`fraig_classes_stats`], but consults `memo` first; the third
/// return value reports whether the result came from the cache.
///
/// Only unlimited sweeps are memoizable (a `ctl`-cancelled or
/// conflict-capped sweep's result depends on where it was cut off, so it
/// is looked up but never stored under a truncating configuration — the
/// fingerprint covers `max_total_conflicts`, and `ctl` disables the memo
/// entirely).
pub fn fraig_classes_memo(
    aig: &Aig,
    opts: &FraigOptions,
    memo: &dyn SweepMemo,
) -> (EquivClasses, SweepStats, bool) {
    if !opts.ctl.is_unlimited() {
        let (classes, stats) = fraig_classes_stats(aig, opts);
        return (classes, stats, false);
    }
    let (key, check) = sweep_fingerprint(aig, opts);
    if let Some((classes, stats)) = memo.lookup_sweep(key, check) {
        return (classes, stats, true);
    }
    let (classes, stats) = fraig_classes_stats(aig, opts);
    memo.store_sweep(key, check, &classes, &stats);
    (classes, stats, false)
}

/// Like [`fraig_classes`], additionally returning [`SweepStats`] counters
/// for telemetry.
pub fn fraig_classes_stats(aig: &Aig, opts: &FraigOptions) -> (EquivClasses, SweepStats) {
    let mut stats = SweepStats::default();
    let roots: Vec<ALit> = aig.outputs().iter().map(|o| o.lit).collect();
    let mut nodes = aig.cone_vars(&roots);
    if !nodes.contains(&AVar::CONST) {
        nodes.insert(0, AVar::CONST);
    }

    // One incremental solver over the whole cone, enrolled in the
    // governor's control block (a no-op when unlimited).
    let mut solver = Solver::new();
    if !opts.ctl.is_unlimited() {
        solver.set_ctl(&opts.ctl);
    }
    let mut map: HashMap<AVar, SLit> = HashMap::new();
    encode_cone(aig, &roots, &mut map, &mut solver);
    if !map.contains_key(&AVar::CONST) {
        // Outputs may not mention the constant; force-encode it.
        encode_cone(aig, &[ALit::FALSE], &mut map, &mut solver);
    }

    // Stimulus: a fixed random base; counterexamples and one fresh random
    // diversity column per round are appended incrementally.
    let mut isim = IncrementalSim::with_random_base(aig, opts.sim_words, opts.seed);
    let mut diversity = SplitMix64::new(opts.seed ^ 0x9e37_79b9_7f4a_7c15);

    let mut uf = ParityUnionFind::new(aig.len());
    let mut disproved: HashSet<(AVar, AVar)> = HashSet::new();

    // Reused bucketing scratch: no per-node heap allocation in the loop.
    let mut sig_buf: Vec<(u128, u32)> = Vec::new();
    let mut flat: Vec<AVar> = Vec::new();
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut round_cex: Vec<Vec<bool>> = Vec::new();

    'rounds: for _round in 0..opts.max_rounds {
        stats.rounds += 1;
        isim.resimulate(aig);
        let sim = isim.vectors();

        candidate_groups(
            sim,
            &nodes,
            |s, l| s.fingerprint(l).0,
            &mut sig_buf,
            &mut flat,
            &mut ranges,
        );

        let mut new_cex = 0usize;
        for &(start, len) in &ranges {
            let members = &flat[start as usize..(start + len) as usize];
            let repr = members[0];
            let repr_phase = sim.phase(repr);
            for &m in &members[1..] {
                if uf
                    .related(repr.index() as usize, m.index() as usize)
                    .is_some()
                {
                    continue;
                }
                if disproved.contains(&(repr, m)) {
                    continue;
                }
                // Governor gate: abandon the sweep once the control block
                // fires or the total conflict allowance is spent. Only
                // proven classes are reported, so stopping here is sound.
                let spent = solver.stats().conflicts;
                if opts.ctl.expired() || spent >= opts.max_total_conflicts {
                    break 'rounds;
                }
                let query_budget = opts.conflict_budget.min(opts.max_total_conflicts - spent);
                let phase = repr_phase ^ sim.phase(m);
                // Query: repr != (m ^ phase) — i.e. the XOR is satisfiable?
                let lr = map[&repr];
                let lm = if phase { !map[&m] } else { map[&m] };
                let act = solver.new_var().pos();
                solver.add_clause(&[!act, lr, lm]);
                solver.add_clause(&[!act, !lr, !lm]);
                stats.sat_calls += 1;
                match solver.solve_limited(&[act], query_budget) {
                    Some(false) => {
                        stats.proven += 1;
                        uf.union(repr.index() as usize, m.index() as usize, phase);
                    }
                    Some(true) => {
                        let bits: Vec<bool> = aig
                            .inputs()
                            .iter()
                            .map(|iv| {
                                map.get(iv)
                                    .map(|&sl| solver.model_value(sl) == LBool::True)
                                    .unwrap_or(false)
                            })
                            .collect();
                        round_cex.push(bits);
                        disproved.insert((repr, m));
                        stats.disproved += 1;
                        new_cex += 1;
                    }
                    None => {
                        // Budget exhausted: treat as unproven.
                        disproved.insert((repr, m));
                        stats.budgeted_out += 1;
                    }
                }
                // Retire the activation: the query clauses are satisfied by
                // the level-0 unit and get dropped by the round-end
                // simplify instead of accumulating forever.
                solver.add_clause(&[!act]);
                stats.retired_activations += 1;
            }
        }
        stats.cex_patterns += new_cex as u64;
        // Garbage-collect the retired query clauses.
        solver.simplify();
        if new_cex == 0 {
            break;
        }
        for bits in round_cex.drain(..) {
            isim.append_pattern(aig, &bits);
        }
        // Extra random diversity each round.
        isim.append_random_column(aig, &mut diversity);
    }
    stats.resim_columns = isim.resim_columns();
    stats.resim_columns_saved = isim.resim_columns_saved();

    // Materialize classes from the union-find.
    let mut groups: HashMap<usize, Vec<(AVar, bool)>> = HashMap::new();
    for &v in &nodes {
        let (root, phase) = uf.find(v.index() as usize);
        groups.entry(root).or_default().push((v, phase));
    }
    let mut classes = Vec::new();
    let mut repr_of = HashMap::new();
    for (_, mut members) in groups {
        if members.len() < 2 {
            continue;
        }
        members.sort_by_key(|(v, _)| v.index());
        let (repr, repr_phase) = members[0];
        let members: Vec<(AVar, bool)> = members
            .into_iter()
            .map(|(v, ph)| (v, ph ^ repr_phase))
            .collect();
        for &(v, ph) in &members {
            repr_of.insert(v, (repr, ph));
        }
        classes.push(EquivClass { repr, members });
    }
    classes.sort_by_key(|c| c.repr.index());
    stats.classes = classes.len();
    stats.class_members = classes.iter().map(|c| c.members.len()).sum();
    stats.sat = solver.stats();
    (EquivClasses { classes, repr_of }, stats)
}

/// Buckets `nodes` into candidate equivalence groups keyed by `fp`
/// (normally the 128-bit canonical-word fingerprint), confirming every
/// bucket with a full canonical-word comparison so that a colliding — or
/// even deliberately weak — `fp` only costs speed, never soundness.
///
/// Only groups with at least two members are emitted, as disjoint
/// `(start, len)` ranges into `flat`, ordered by their head (lowest,
/// topologically earliest) var; that ordering is what makes the SAT query
/// order — and everything downstream of the counterexample feedback —
/// deterministic. All three buffers are caller-owned scratch reused
/// across rounds, so steady-state bucketing does no per-node allocation.
fn candidate_groups(
    sim: &SimVectors,
    nodes: &[AVar],
    fp: impl Fn(&SimVectors, ALit) -> u128,
    sig_buf: &mut Vec<(u128, u32)>,
    flat: &mut Vec<AVar>,
    ranges: &mut Vec<(u32, u32)>,
) {
    sig_buf.clear();
    flat.clear();
    ranges.clear();
    sig_buf.extend(nodes.iter().map(|&v| (fp(sim, v.pos()), v.index())));
    sig_buf.sort_unstable();
    let mut i = 0;
    while i < sig_buf.len() {
        let mut j = i + 1;
        while j < sig_buf.len() && sig_buf[j].0 == sig_buf[i].0 {
            j += 1;
        }
        if j - i >= 2 {
            split_run(sim, &sig_buf[i..j], flat, ranges);
        }
        i = j;
    }
    ranges.sort_unstable_by_key(|&(start, _)| flat[start as usize].index());
}

/// Emits the true candidate groups of one equal-fingerprint run. The fast
/// path — no collision, every member canon-equal to the head — is
/// allocation-free; a genuine collision partitions the run by full
/// canonical words.
fn split_run(
    sim: &SimVectors,
    run: &[(u128, u32)],
    flat: &mut Vec<AVar>,
    ranges: &mut Vec<(u32, u32)>,
) {
    let head = AVar::new(run[0].1);
    if run[1..]
        .iter()
        .all(|&(_, vi)| sim.canon_eq(head.pos(), AVar::new(vi).pos()))
    {
        let start = flat.len() as u32;
        flat.extend(run.iter().map(|&(_, vi)| AVar::new(vi)));
        ranges.push((start, run.len() as u32));
        return;
    }
    let mut assigned = vec![false; run.len()];
    for k in 0..run.len() {
        if assigned[k] {
            continue;
        }
        let head = AVar::new(run[k].1);
        let start = flat.len() as u32;
        flat.push(head);
        assigned[k] = true;
        for (l, slot) in assigned.iter_mut().enumerate().skip(k + 1) {
            if !*slot {
                let m = AVar::new(run[l].1);
                if sim.canon_eq(head.pos(), m.pos()) {
                    flat.push(m);
                    *slot = true;
                }
            }
        }
        let len = flat.len() as u32 - start;
        if len >= 2 {
            ranges.push((start, len));
        } else {
            // Collision-only singleton: not a candidate.
            flat.truncate(start as usize);
        }
    }
}

/// Rebuilds `aig` with every class member replaced by its representative,
/// returning the functionally reduced AIG (outputs preserved by name).
pub fn fraig_reduce(aig: &Aig, classes: &EquivClasses) -> Aig {
    let mut new = Aig::new();
    let mut cache: HashMap<AVar, ALit> = HashMap::new();
    cache.insert(AVar::CONST, ALit::FALSE);
    for (pos, &v) in aig.inputs().iter().enumerate() {
        let lit = new.add_input(aig.input_name(pos).to_owned());
        cache.insert(v, lit);
    }
    let roots: Vec<ALit> = aig.outputs().iter().map(|o| o.lit).collect();
    for v in aig.cone_vars(&roots) {
        if cache.contains_key(&v) {
            continue;
        }
        // If v is equivalent to an earlier representative, reuse its lit.
        let lit = if let Some((r, ph)) = classes.repr(v) {
            if r != v && cache.contains_key(&r) {
                cache[&r].xor_complement(ph)
            } else {
                rebuild(aig, &mut new, &cache, v)
            }
        } else {
            rebuild(aig, &mut new, &cache, v)
        };
        cache.insert(v, lit);
    }
    for out in aig.outputs() {
        let lit = cache[&out.lit.var()].xor_complement(out.lit.is_complement());
        new.add_output(out.name.clone(), lit);
    }
    new
}

fn rebuild(aig: &Aig, new: &mut Aig, cache: &HashMap<AVar, ALit>, v: AVar) -> ALit {
    if let Some((fan0, fan1)) = aig.and_fanins(v) {
        let n0 = cache[&fan0.var()].xor_complement(fan0.is_complement());
        let n1 = cache[&fan1.var()].xor_complement(fan1.is_complement());
        new.and(n0, n1)
    } else if v == AVar::CONST {
        ALit::FALSE
    } else {
        cache[&v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_structurally_distinct_equivalence() {
        // f1 = a & b; f2 = !(!a | !b): strash merges these, so build the
        // second form with extra redundancy: f2 = (a & b) & (a | b).
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f1 = aig.and(a, b);
        let a_or_b = aig.or(a, b);
        let f2 = aig.and(f1, a_or_b); // == a & b
        aig.add_output("f1", f1);
        aig.add_output("f2", f2);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(f1.var(), f2.var()), Some(false));
    }

    #[test]
    fn detects_complement_equivalence() {
        // g = a ^ b, h = !(a ^ b) built as xnor via fresh structure.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let g = aig.xor(a, b);
        // xnor = (a&b) | (!a&!b): different structure from !xor.
        let t0 = aig.and(a, b);
        let t1 = aig.and(!a, !b);
        let h = aig.or(t0, t1);
        aig.add_output("g", g);
        aig.add_output("h", h);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(g.var(), h.var()), Some(true));
    }

    #[test]
    fn detects_constant_nodes() {
        // z = (a & b) & (a & !b) == 0, structurally hidden.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let t0 = aig.and(a, b);
        let t1 = aig.and(a, !b);
        let z = aig.and(t0, t1);
        aig.add_output("z", z);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(z.var(), AVar::CONST), Some(false));
    }

    #[test]
    fn inequivalent_nodes_stay_separate() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.and(a, b);
        let g = aig.and(a, c);
        aig.add_output("f", f);
        aig.add_output("g", g);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(f.var(), g.var()), None);
    }

    #[test]
    fn reduce_merges_equivalent_logic() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f1 = aig.and(a, b);
        let a_or_b = aig.or(a, b);
        let f2 = aig.and(f1, a_or_b);
        aig.add_output("f1", f1);
        aig.add_output("f2", f2);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        let reduced = fraig_reduce(&aig, &classes);
        assert!(reduced.num_ands() < aig.num_ands());
        // Semantics preserved.
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval(&vals), reduced.eval(&vals));
        }
    }

    #[test]
    fn cross_circuit_sharing_detected() {
        // Two copies of a 3-input majority over the same inputs, built with
        // different decompositions, inside one manager.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        // maj1 = ab | bc | ca
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        let ca = aig.and(c, a);
        let t = aig.or(ab, bc);
        let maj1 = aig.or(t, ca);
        // maj2 = mux(a, b|c, b&c)
        let b_or_c = aig.or(b, c);
        let b_and_c = aig.and(b, c);
        let maj2 = aig.mux(a, b_or_c, b_and_c);
        aig.add_output("maj1", maj1);
        aig.add_output("maj2", maj2);
        let classes = fraig_classes(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(maj1.var(), maj2.var()), Some(false));
    }

    #[test]
    fn sweep_counts_retired_activations_and_saved_columns() {
        // Force at least one disproof (spurious candidate under 1 word of
        // stimulus is likely across rounds) and check the new counters.
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f1 = aig.and(a, b);
        let a_or_b = aig.or(a, b);
        let f2 = aig.and(f1, a_or_b);
        aig.add_output("f1", f1);
        aig.add_output("f2", f2);
        let (classes, stats) = fraig_classes_stats(&aig, &FraigOptions::default());
        assert_eq!(classes.equivalent(f1.var(), f2.var()), Some(false));
        assert_eq!(
            stats.retired_activations, stats.sat_calls,
            "every query's activation literal must be retired"
        );
        assert!(stats.resim_columns >= FraigOptions::default().sim_words as u64);
    }

    /// A spent total-conflict allowance (or a fired control block) must
    /// stop the sweep before any query, soundly reporting no classes.
    #[test]
    fn governor_limits_abandon_the_sweep_soundly() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f1 = aig.and(a, b);
        let a_or_b = aig.or(a, b);
        let f2 = aig.and(f1, a_or_b);
        aig.add_output("f1", f1);
        aig.add_output("f2", f2);

        let capped = FraigOptions {
            max_total_conflicts: 0,
            ..Default::default()
        };
        let (classes, stats) = fraig_classes_stats(&aig, &capped);
        assert!(classes.is_empty(), "no query may run with a spent cap");
        assert_eq!(stats.sat_calls, 0);

        let cancel = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let cancelled = FraigOptions {
            ctl: eco_sat::SolveCtl {
                deadline: None,
                cancel: Some(cancel),
            },
            ..Default::default()
        };
        let (classes, stats) = fraig_classes_stats(&aig, &cancelled);
        assert!(classes.is_empty());
        assert_eq!(stats.sat_calls, 0);
    }

    /// A deliberately colliding fingerprint must not corrupt candidate
    /// grouping: the full-word fallback still separates distinct functions.
    #[test]
    fn fingerprint_collision_falls_back_to_full_words() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f1 = aig.and(a, b);
        let a_or_b = aig.or(a, b);
        let f2 = aig.and(f1, a_or_b); // == a & b, distinct node
        aig.add_output("f1", f1);
        aig.add_output("f2", f2);
        aig.add_output("or", a_or_b);

        let roots: Vec<ALit> = aig.outputs().iter().map(|o| o.lit).collect();
        let mut nodes = aig.cone_vars(&roots);
        if !nodes.contains(&AVar::CONST) {
            nodes.insert(0, AVar::CONST);
        }
        // Exhaustive 4 patterns: every node's words are its truth table.
        let sim = aig.simulate(&[vec![0b1010], vec![0b1100]]);

        let (mut sig_buf, mut flat, mut ranges) = (Vec::new(), Vec::new(), Vec::new());
        // Constant-zero fingerprint: every node collides into one run.
        candidate_groups(
            &sim,
            &nodes,
            |_, _| 0u128,
            &mut sig_buf,
            &mut flat,
            &mut ranges,
        );
        // Every emitted group is internally canon-equal...
        for &(start, len) in &ranges {
            let members = &flat[start as usize..(start + len) as usize];
            for &m in &members[1..] {
                assert!(
                    sim.canon_eq(members[0].pos(), m.pos()),
                    "group mixes distinct functions"
                );
            }
        }
        // ...f1/f2 still share a group, and no group contains both f1 and
        // the or-node (different truth tables).
        let group_of = |v: AVar| {
            ranges
                .iter()
                .position(|&(s, l)| flat[s as usize..(s + l) as usize].contains(&v))
        };
        assert_eq!(group_of(f1.var()), group_of(f2.var()));
        assert!(group_of(f1.var()).is_some());
        assert_ne!(group_of(f1.var()), group_of(a_or_b.var()));

        // The real fingerprint produces the same candidate grouping.
        let (mut s2, mut f2_, mut r2) = (Vec::new(), Vec::new(), Vec::new());
        candidate_groups(
            &sim,
            &nodes,
            |s, l| s.fingerprint(l).0,
            &mut s2,
            &mut f2_,
            &mut r2,
        );
        let canon = |flat: &[AVar], ranges: &[(u32, u32)]| {
            ranges
                .iter()
                .map(|&(s, l)| flat[s as usize..(s + l) as usize].to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(canon(&flat, &ranges), canon(&f2_, &r2));
    }
}
