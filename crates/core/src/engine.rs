//! The top-level ECO engine: the full Fig.-1 flow.
//!
//! `FRAIG → clustering → localization → patch generation → cost
//! optimization → verification`, with a completeness fallback: if a
//! localized run fails final verification, the engine silently retries
//! without localization before declaring the instance unrectifiable.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use eco_aig::{Aig, Lit, Var};
use eco_fraig::{fraig_classes, fraig_reduce, FraigOptions};

use crate::cluster::cluster_targets;
use crate::localize::{Cut, TapMap};
use crate::optimize::{optimize_patches, total_cost, OptimizeOptions};
use crate::patchgen::{extract_patch_aig, generate_group_patches, PatchFn, PatchGenOptions};
use crate::rectifiable::{check_rectifiable, Rectifiability};
use crate::sizeopt::{reduce_patch_sizes, SizeOptOptions};
use crate::synth::InitialPatchKind;
use crate::verify::{check_equivalence, VerifyOutcome};
use crate::{EcoError, EcoInstance, Workspace};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EcoOptions {
    /// Run localization (Alg. 2); patches may then use intermediate
    /// signals. Off = patches over primary inputs only.
    pub localization: bool,
    /// How initial patches are synthesized (§4.3).
    pub initial_patch: InitialPatchKind,
    /// Run the §6 cost optimizer.
    pub optimize: bool,
    /// Optimizer knobs.
    pub optimize_opts: OptimizeOptions,
    /// FRAIG sweeping knobs.
    pub fraig: FraigOptions,
    /// SAT conflict budget for synthesis queries.
    pub synth_budget: u64,
    /// SAT conflict budget for final verification.
    pub verify_budget: u64,
    /// Decide Eq. (2) (`∀X ∃T. F = G`) up front via 2QBF CEGAR before any
    /// patch generation. Off by default — final verification already
    /// guarantees soundness — but useful to fail fast on hopeless
    /// instances with a universal counterexample.
    pub precheck_rectifiability: bool,
    /// Run the §2.4 don't-care-based patch size reduction after cost
    /// optimization.
    pub size_optimize: bool,
    /// Knobs for the size reduction pass.
    pub size_opts: SizeOptOptions,
}

impl Default for EcoOptions {
    fn default() -> Self {
        EcoOptions {
            localization: true,
            initial_patch: InitialPatchKind::OnSet,
            optimize: true,
            optimize_opts: OptimizeOptions::default(),
            fraig: FraigOptions::default(),
            synth_budget: 1 << 22,
            verify_budget: u64::MAX,
            precheck_rectifiability: false,
            size_optimize: true,
            size_opts: SizeOptOptions::default(),
        }
    }
}

impl EcoOptions {
    /// The configuration used as the contest-winner-style *baseline* in
    /// the paper's Table 2 comparison: primary-input-support patches
    /// (reference \[20\]-style), no localization, no cost optimization.
    pub fn baseline() -> Self {
        EcoOptions {
            localization: false,
            optimize: false,
            ..Default::default()
        }
    }
}

/// Wall-clock time per flow stage (Fig. 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimes {
    /// FRAIG sweeping.
    pub fraig: Duration,
    /// Clustering + localization bookkeeping.
    pub clustering: Duration,
    /// Initial patch generation (Alg. 1).
    pub patchgen: Duration,
    /// Cost optimization (§6).
    pub optimize: Duration,
    /// Final verification.
    pub verify: Duration,
}

impl StageTimes {
    /// Total across stages.
    pub fn total(&self) -> Duration {
        self.fraig + self.clustering + self.patchgen + self.optimize + self.verify
    }
}

/// One target's patch, reported over the final patch AIG.
#[derive(Clone, Debug)]
pub struct TargetPatch {
    /// Target name.
    pub target: String,
    /// Base signal names this patch's function reads.
    pub base: Vec<String>,
    /// AND-gate count of this patch's cone (shared gates counted once per
    /// patch here; the global `size` dedups across patches).
    pub size: usize,
}

/// The engine's result.
#[derive(Clone, Debug)]
pub struct EcoResult {
    /// Per-target patches.
    pub patches: Vec<TargetPatch>,
    /// The combined patch circuit: inputs = union of base signals (named
    /// as in the faulty netlist), outputs = target names.
    pub patch_aig: Aig,
    /// Total base cost: sum of weights over the union of base signals.
    pub cost: u64,
    /// Total patch size in AND gates (shared logic counted once).
    pub size: usize,
    /// Stage wall-clock times.
    pub stage_times: StageTimes,
    /// `true` if the localized attempt failed verification and the engine
    /// fell back to an unlocalized run.
    pub localization_fallback: bool,
    /// Interpolation attempts that fell back to the on-set (§4.3).
    pub interpolation_fallbacks: usize,
    /// Cost before/after the optimization stage.
    pub optimize_delta: (u64, u64),
}

/// The cost-aware multi-target ECO patch generator.
///
/// # Examples
///
/// ```
/// use eco_core::{EcoEngine, EcoInstance, EcoOptions};
/// use eco_netlist::{parse_verilog, WeightTable};
///
/// let faulty = parse_verilog(
///     "module f (a, b, c, t, y); input a, b, c, t; output y;
///      xor g1 (y, t, c); endmodule",
/// )?;
/// let golden = parse_verilog(
///     "module g (a, b, c, y); input a, b, c; output y;
///      wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
/// )?;
/// let inst = EcoInstance::from_netlists(
///     "demo", &faulty, &golden, vec!["t".into()], &WeightTable::new(1),
/// )?;
/// let result = EcoEngine::new(inst, EcoOptions::default()).run()?;
/// assert_eq!(result.patches[0].target, "t");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EcoEngine {
    instance: EcoInstance,
    options: EcoOptions,
}

impl EcoEngine {
    /// Creates an engine over a validated instance.
    pub fn new(instance: EcoInstance, options: EcoOptions) -> Self {
        EcoEngine { instance, options }
    }

    /// The instance under rectification.
    pub fn instance(&self) -> &EcoInstance {
        &self.instance
    }

    /// Runs the full flow.
    ///
    /// # Errors
    ///
    /// [`EcoError::Unrectifiable`] when no patch over the given targets can
    /// make the circuits equivalent (witnessed by a failed final
    /// verification of the complete, unlocalized derivation), and
    /// [`EcoError::ResourceLimit`] when verification exhausts its budget.
    pub fn run(&self) -> Result<EcoResult, EcoError> {
        match self.attempt(self.options.localization)? {
            Ok(result) => Ok(result),
            Err(_cex) if self.options.localization => {
                // Completeness fallback: retry without localization.
                match self.attempt(false)? {
                    Ok(mut result) => {
                        result.localization_fallback = true;
                        Ok(result)
                    }
                    Err(cex) => Err(EcoError::Unrectifiable(format!(
                        "verification counterexample: {cex}"
                    ))),
                }
            }
            Err(cex) => Err(EcoError::Unrectifiable(format!(
                "verification counterexample: {cex}"
            ))),
        }
    }

    /// One flow attempt; `Ok(Err(cex))` = verification failed.
    fn attempt(&self, localization: bool) -> Result<Result<EcoResult, String>, EcoError> {
        let opts = &self.options;
        let mut times = StageTimes::default();
        let mut ws = Workspace::new(&self.instance);

        // Stage 1: FRAIG (only needed for localization taps).
        let t0 = Instant::now();
        let tap = if localization {
            let classes = fraig_classes(&ws.mgr, &opts.fraig);
            TapMap::build(&ws, &classes)
        } else {
            TapMap::empty()
        };
        times.fraig = t0.elapsed();

        // Stage 2: clustering.
        let t0 = Instant::now();
        let clustering = cluster_targets(&ws);
        times.clustering = t0.elapsed();

        if opts.precheck_rectifiability {
            match check_rectifiable(&mut ws, 256, opts.verify_budget) {
                Rectifiability::Rectifiable => {}
                Rectifiability::Counterexample(cex) => {
                    return Err(EcoError::Unrectifiable(format!(
                        "Eq. (2) counterexample: no target assignment works at {cex:?}"
                    )))
                }
                Rectifiability::Unknown => {
                    return Err(EcoError::ResourceLimit("rectifiability precheck".into()))
                }
            }
        }

        // Untouched outputs must already match — otherwise no patch can
        // ever rectify them (fast necessary condition for Eq. 2).
        if !clustering.untouched_outputs.is_empty() {
            let pairs: Vec<(Lit, Lit)> = clustering
                .untouched_outputs
                .iter()
                .map(|&j| (ws.f_outs[j], ws.g_outs[j]))
                .collect();
            match check_equivalence(&mut ws.mgr, &pairs, opts.verify_budget) {
                VerifyOutcome::Equivalent => {}
                VerifyOutcome::Counterexample(cex) => {
                    let at = if cex.is_empty() {
                        "for all inputs".to_string()
                    } else {
                        format!("at {cex:?}")
                    };
                    return Err(EcoError::Unrectifiable(format!(
                        "output outside all target fanout cones differs {at}"
                    )));
                }
                VerifyOutcome::Unknown => {
                    return Err(EcoError::ResourceLimit(
                        "verification budget (untouched outputs)".into(),
                    ))
                }
            }
        }

        // Stage 3+4: localization-aware patch generation per cluster.
        let t0 = Instant::now();
        let mut patches: Vec<PatchFn> = Vec::new();
        let mut interpolation_fallbacks = 0;
        let pg_opts = PatchGenOptions {
            kind: opts.initial_patch,
            conflict_budget: opts.synth_budget,
            ..Default::default()
        };
        for cluster in &clustering.clusters {
            let group = generate_group_patches(&mut ws, &tap, cluster, &pg_opts);
            interpolation_fallbacks += group.fallbacks;
            patches.extend(group.patches);
        }
        for &k in &clustering.dead_targets {
            patches.push(PatchFn {
                target: k,
                lit: Lit::FALSE,
                cut: Cut::default(),
            });
        }
        times.patchgen = t0.elapsed();

        // Stage 5: cost optimization.
        let t0 = Instant::now();
        let optimize_delta = if opts.optimize {
            let stats = optimize_patches(&mut ws, &mut patches, &opts.optimize_opts);
            (stats.cost_before, stats.cost_after)
        } else {
            let c = total_cost(&ws, &patches);
            (c, c)
        };
        if opts.size_optimize {
            let _ = reduce_patch_sizes(&mut ws, &mut patches, &opts.size_opts);
        }
        times.optimize = t0.elapsed();

        // Stage 6: verification.
        let t0 = Instant::now();
        let map: HashMap<Var, Lit> = patches
            .iter()
            .map(|p| (ws.target_vars[p.target], p.lit))
            .collect();
        let f_outs = ws.f_outs.clone();
        let patched = ws.mgr.substitute(&f_outs, &map);
        let pairs: Vec<(Lit, Lit)> = patched.into_iter().zip(ws.g_outs.clone()).collect();
        let verdict = check_equivalence(&mut ws.mgr, &pairs, opts.verify_budget);
        times.verify = t0.elapsed();
        match verdict {
            VerifyOutcome::Equivalent => {}
            VerifyOutcome::Counterexample(cex) => return Ok(Err(format!("{cex:?}"))),
            VerifyOutcome::Unknown => {
                return Err(EcoError::ResourceLimit("verification budget".into()))
            }
        }

        // Assemble the result: order patches by target index, extract the
        // combined patch AIG over the merged cut, prune unused inputs, and
        // FRAIG-reduce the patch itself.
        patches.sort_by_key(|p| p.target);
        let merged = Cut::merge(patches.iter().map(|p| &p.cut));
        let roots: Vec<Lit> = patches.iter().map(|p| p.lit).collect();
        let (mut patch_aig, outs) = extract_patch_aig(&ws.mgr, &ws.target_vars, &roots, &merged);
        for (p, &o) in patches.iter().zip(&outs) {
            patch_aig.add_output(self.instance.targets[p.target].clone(), o);
        }
        let patch_aig = prune_unused_inputs(&patch_aig);
        let patch_aig = {
            let classes = fraig_classes(&patch_aig, &opts.fraig);
            fraig_reduce(&patch_aig, &classes).compact()
        };

        let cost = total_cost(&ws, &patches);
        let all_roots: Vec<Lit> = patch_aig.outputs().iter().map(|o| o.lit).collect();
        let size = patch_aig.count_cone_ands(&all_roots);
        let target_patches: Vec<TargetPatch> = patch_aig
            .outputs()
            .iter()
            .map(|o| TargetPatch {
                target: o.name.clone(),
                base: patch_aig
                    .support(&[o.lit])
                    .iter()
                    .map(|&v| {
                        patch_aig
                            .input_name(patch_aig.input_pos(v).expect("support is inputs"))
                            .to_owned()
                    })
                    .collect(),
                size: patch_aig.count_cone_ands(&[o.lit]),
            })
            .collect();

        Ok(Ok(EcoResult {
            patches: target_patches,
            patch_aig,
            cost,
            size,
            stage_times: times,
            localization_fallback: false,
            interpolation_fallbacks,
            optimize_delta,
        }))
    }
}

/// Rebuilds `aig` keeping only inputs in the support of its outputs.
fn prune_unused_inputs(aig: &Aig) -> Aig {
    let roots: Vec<Lit> = aig.outputs().iter().map(|o| o.lit).collect();
    let used = aig.support(&roots);
    let mut new = Aig::new();
    let mut map: HashMap<Var, Lit> = HashMap::new();
    for &v in &used {
        let pos = aig.input_pos(v).expect("support is inputs");
        map.insert(v, new.add_input(aig.input_name(pos).to_owned()));
    }
    let outs = new.import(aig, &roots, &map);
    for (o, &lit) in aig.outputs().iter().zip(&outs) {
        new.add_output(o.name.clone(), lit);
    }
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{parse_verilog, WeightTable};

    fn instance(
        faulty: &str,
        golden: &str,
        targets: &[&str],
        weights: &WeightTable,
    ) -> EcoInstance {
        EcoInstance::from_netlists(
            "engine-test",
            &parse_verilog(faulty).expect("faulty"),
            &parse_verilog(golden).expect("golden"),
            targets.iter().map(|s| s.to_string()).collect(),
            weights,
        )
        .expect("instance")
    }

    /// Exhaustively check that splicing the patch AIG into the faulty
    /// circuit matches the golden circuit.
    fn check_result(inst: &EcoInstance, result: &EcoResult) {
        let x_names = inst.x_names();
        assert!(x_names.len() <= 10, "exhaustive check needs few inputs");
        // Evaluate golden directly; evaluate faulty with targets driven by
        // the patch AIG, whose inputs are faulty nets (which in these tests
        // are all X inputs or computable nets — we re-elaborate via the
        // workspace instead for generality).
        let ws = Workspace::new(inst);
        let mut mgr = ws.mgr.clone();
        // Patch outputs imported over the manager: patch input names are
        // faulty net names = candidate names.
        let mut imap: HashMap<Var, Lit> = HashMap::new();
        for pos in 0..result.patch_aig.num_inputs() {
            let name = result.patch_aig.input_name(pos);
            let lit = ws
                .cands
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.lit)
                .or_else(|| ws.x_lit(name))
                .unwrap_or_else(|| panic!("patch input `{name}` not found"));
            imap.insert(result.patch_aig.input_var(pos), lit);
        }
        let proots: Vec<Lit> = result.patch_aig.outputs().iter().map(|o| o.lit).collect();
        let plits = mgr.import(&result.patch_aig, &proots, &imap);
        let tmap: HashMap<Var, Lit> = result
            .patch_aig
            .outputs()
            .iter()
            .zip(&plits)
            .map(|(o, &l)| {
                let k = inst
                    .targets
                    .iter()
                    .position(|t| *t == o.name)
                    .expect("target");
                (ws.target_vars[k], l)
            })
            .collect();
        let patched = mgr.substitute(&ws.f_outs.clone(), &tmap);
        mgr.clear_outputs();
        for (j, (&p, &g)) in patched.iter().zip(&ws.g_outs).enumerate() {
            let m = mgr.xor(p, g);
            mgr.add_output(format!("m{j}"), m);
        }
        let n = mgr.num_inputs();
        for bits in 0u64..1 << n {
            let vals: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert!(
                mgr.eval(&vals).iter().all(|&b| !b),
                "patched != golden at {vals:?}"
            );
        }
    }

    #[test]
    fn single_target_end_to_end() {
        let inst = instance(
            "module f (a, b, c, t, y); input a, b, c, t; output y; \
             xor g1 (y, t, c); endmodule",
            "module g (a, b, c, y); input a, b, c; output y; \
             wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
            &["t"],
            &WeightTable::new(3),
        );
        let result = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        assert_eq!(result.patches.len(), 1);
        assert!(result.cost > 0);
        assert!(result.size >= 1);
        check_result(&inst, &result);
    }

    #[test]
    fn multi_target_end_to_end() {
        let inst = instance(
            "module f (a, b, c, t1, t2, y, z); input a, b, c, t1, t2; output y, z; \
             or g1 (y, t1, t2); and g2 (z, t2, c); endmodule",
            "module g (a, b, c, y, z); input a, b, c; output y, z; \
             wire w1, w2; and g1 (w1, a, b); xor g2 (w2, a, c); \
             or g3 (y, w1, w2); and g4 (z, w2, c); endmodule",
            &["t1", "t2"],
            &WeightTable::new(2),
        );
        let result = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        assert_eq!(result.patches.len(), 2);
        check_result(&inst, &result);
    }

    #[test]
    fn localization_reuses_existing_net() {
        // The needed function exists as cheap net `w`; PIs cost 50.
        let mut weights = WeightTable::new(50);
        weights.set("w", 2);
        let inst = instance(
            "module f (a, b, c, t, y, u); input a, b, c, t; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, t, c); buf g2 (u, w); endmodule",
            "module g (a, b, c, y, u); input a, b, c; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, w, c); buf g2 (u, w); endmodule",
            &["t"],
            &weights,
        );
        let result = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        check_result(&inst, &result);
        assert_eq!(result.cost, 2, "patch should tap w: {:?}", result.patches);
        assert_eq!(result.patches[0].base, vec!["w"]);
        // Baseline (PI-only) must pay for the inputs instead.
        let baseline = EcoEngine::new(inst.clone(), EcoOptions::baseline())
            .run()
            .expect("rectifiable");
        check_result(&inst, &baseline);
        assert!(baseline.cost > result.cost);
    }

    #[test]
    fn unrectifiable_is_reported() {
        // Output z does not depend on the target and differs from golden.
        let inst = instance(
            "module f (a, t, y, z); input a, t; output y, z; \
             buf g1 (y, t); buf g2 (z, a); endmodule",
            "module g (a, y, z); input a; output y, z; \
             buf g1 (y, a); not g2 (z, a); endmodule",
            &["t"],
            &WeightTable::new(1),
        );
        let err = EcoEngine::new(inst, EcoOptions::default())
            .run()
            .unwrap_err();
        assert!(matches!(err, EcoError::Unrectifiable(_)), "{err}");
    }

    #[test]
    fn dead_target_gets_constant_patch() {
        let inst = instance(
            "module f (a, t1, t2, y); input a, t1, t2; output y; \
             buf g1 (y, t1); endmodule",
            "module g (a, y); input a; output y; not g1 (y, a); endmodule",
            &["t1", "t2"],
            &WeightTable::new(1),
        );
        let result = EcoEngine::new(inst.clone(), EcoOptions::default())
            .run()
            .expect("rectifiable");
        let t2 = result
            .patches
            .iter()
            .find(|p| p.target == "t2")
            .expect("t2");
        assert!(t2.base.is_empty());
        assert_eq!(t2.size, 0);
        check_result(&inst, &result);
    }

    #[test]
    fn stage_times_are_recorded() {
        let inst = instance(
            "module f (a, t, y); input a, t; output y; and g1 (y, a, t); endmodule",
            "module g (a, y); input a; output y; buf g1 (y, a); endmodule",
            &["t"],
            &WeightTable::new(1),
        );
        let result = EcoEngine::new(inst, EcoOptions::default())
            .run()
            .expect("ok");
        // total() sums the stages; just ensure it is consistent.
        assert!(result.stage_times.total() >= result.stage_times.patchgen);
    }
}
