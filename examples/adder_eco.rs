//! A realistic ECO on a generated datapath: cut two deep nets out of a
//! shared-datapath design and compare the cost-aware engine against the
//! primary-input-support baseline.
//!
//! This is the scenario motivating the paper's introduction: rerunning
//! synthesis is not an option, the patch must reuse existing signals, and
//! intermediate nets are much cheaper to tap than routing back to the
//! primary inputs.
//!
//! Run with `cargo run --release --example adder_eco`.

use eco::core::{EcoEngine, EcoInstance, EcoOptions};
use eco::workgen::{assign_weights, cut_targets, WeightProfile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Golden: a 10-bit shared datapath (adder + parity + comparator feeding
    // a combiner layer).
    let golden = eco::workgen::circuits::shared_datapath(10);

    // The ECO cut the nets driving the two combiner outputs; they float in
    // the faulty design. (The combiner outputs are buffers of the last
    // internal wires, so the targets are those wires' drivers.)
    let combiner_net = |out: &str| -> String {
        golden
            .gates
            .iter()
            .find(|g| g.output == out)
            .and_then(|g| g.inputs[0].name())
            .expect("combiner output is a buffer")
            .to_string()
    };
    let targets = vec![combiner_net("combine0"), combiner_net("combine1")];
    let faulty = cut_targets(&golden, &targets).expect("targets are driven");

    // Primary inputs are expensive (long routes), internal wires cheap.
    let weights = assign_weights(&faulty, WeightProfile::CheapWires { pi: 60, wire: 2 }, 1);

    let instance = EcoInstance::from_netlists("adder_eco", &faulty, &golden, targets, &weights)?;

    let ours = EcoEngine::new(instance.clone(), EcoOptions::default()).run()?;
    let baseline = EcoEngine::new(instance, EcoOptions::baseline()).run()?;

    println!("                 cost    size");
    println!(
        "baseline (PI):  {:>5}   {:>5}",
        baseline.cost, baseline.size
    );
    println!("cost-aware:     {:>5}   {:>5}", ours.cost, ours.size);
    println!(
        "\nreduction: {:.1}x cost, {:.1}x size",
        baseline.cost as f64 / ours.cost.max(1) as f64,
        baseline.size as f64 / ours.size.max(1) as f64
    );
    for patch in &ours.patches {
        println!("  {} <- f({})", patch.target, patch.base.join(", "));
    }
    Ok(())
}
