//! The And-Inverter Graph container and its structural-hashing builders.
//!
//! # Memory layout
//!
//! The node store is struct-of-arrays: two parallel `Vec<u32>` hold the
//! packed fanin literals of every node ([`Lit::code`] words), and the node
//! kind is encoded in-band with reserved sentinel values in the `fan0`
//! column (see [`SENTINEL_INPUT`] / [`SENTINEL_CONST`]). Structural hashing
//! uses an open-addressed, power-of-two table of node indices keyed by a
//! cheap mixed hash of the fanin pair, so the whole core costs ~16 bytes
//! per node instead of the ~40+ of a `Vec<enum>` plus a SipHash `HashMap`.
//! [`Node`] remains the public *view* type: [`Aig::node`] decodes a row on
//! demand.

use std::fmt;

use crate::{Lit, Node, TransformError, Var};

/// `fan0` sentinel marking an input row; `fan1` holds the input position.
pub(crate) const SENTINEL_INPUT: u32 = u32::MAX - 1;
/// `fan0` sentinel marking the constant row (index 0); `fan1` is unused.
pub(crate) const SENTINEL_CONST: u32 = u32::MAX;

/// Largest permitted node index. Keeps every packed literal code
/// (`2 * index + 1`) strictly below the smallest sentinel, so fanin words
/// and sentinels can never collide.
const MAX_INDEX: u32 = (u32::MAX - 3) / 2;

/// Converts a node index to a `Var`.
///
/// Node indices are bounded by `MAX_INDEX` (enforced at creation), so the
/// narrowing is lossless.
#[inline]
fn var_at(i: usize) -> Var {
    debug_assert!(i <= MAX_INDEX as usize);
    #[allow(clippy::cast_possible_truncation)]
    Var::new(i as u32)
}

/// A named primary output of an [`Aig`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Output {
    /// Output name (unique within the AIG by convention, not enforced).
    pub name: String,
    /// Literal driving the output.
    pub lit: Lit,
}

/// Free slot marker in the strash table (never a valid node index).
const STRASH_EMPTY: u32 = u32::MAX;

/// Mixes a packed fanin pair into a well-dispersed 64-bit hash.
///
/// This is the SplitMix64 finalizer: three shifts and two multiplies,
/// far cheaper than SipHash and good enough that linear probing stays
/// short at the 3/4 load factor the table maintains.
#[inline]
fn strash_hash(f0: u32, f1: u32) -> u64 {
    let mut x = (u64::from(f0) << 32) | u64::from(f1);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Open-addressed structural-hashing table.
///
/// Slots store node indices of AND rows; the key of a slot is the fanin
/// pair found in the AIG's fanin columns at that index, so the table
/// itself costs exactly 4 bytes per slot. Capacity is a power of two and
/// grows 2x when load reaches 3/4; entries are never deleted (the AIG is
/// append-only).
// Hashes are masked to the table size on use; truncation is the point.
#[allow(clippy::cast_possible_truncation)]
#[derive(Clone, Debug, Default)]
struct Strash {
    slots: Vec<u32>,
    len: usize,
}

#[allow(clippy::cast_possible_truncation)] // hash -> slot index masking
impl Strash {
    /// Finds the AND node whose canonical fanin pair is `(f0, f1)`.
    fn lookup(&self, fan0s: &[u32], fan1s: &[u32], f0: u32, f1: u32) -> Option<Var> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = strash_hash(f0, f1) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == STRASH_EMPTY {
                return None;
            }
            let v = s as usize;
            if fan0s[v] == f0 && fan1s[v] == f1 {
                return Some(Var::new(s));
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts the AND row at index `var`; the caller guarantees its fanin
    /// pair is not already present.
    fn insert(&mut self, fan0s: &[u32], fan1s: &[u32], var: u32) {
        if self.len * 4 >= self.slots.len() * 3 {
            self.grow(fan0s, fan1s);
        }
        let mask = self.slots.len() - 1;
        let v = var as usize;
        let mut i = strash_hash(fan0s[v], fan1s[v]) as usize & mask;
        while self.slots[i] != STRASH_EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = var;
        self.len += 1;
    }

    fn grow(&mut self, fan0s: &[u32], fan1s: &[u32]) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![STRASH_EMPTY; new_cap]);
        let mask = new_cap - 1;
        for s in old {
            if s == STRASH_EMPTY {
                continue;
            }
            let v = s as usize;
            let mut i = strash_hash(fan0s[v], fan1s[v]) as usize & mask;
            while self.slots[i] != STRASH_EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }

    fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<u32>()
    }
}

/// A combinational And-Inverter Graph with structural hashing.
///
/// Nodes are append-only, so node indices form a topological order:
/// the fanins of an AND always have smaller indices than the AND itself.
/// All builder methods ([`and`](Aig::and), [`or`](Aig::or),
/// [`xor`](Aig::xor), ...) constant-fold and hash structurally, so
/// syntactically identical subgraphs are shared.
///
/// # Examples
///
/// ```
/// use eco_aig::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let f = aig.xor(a, b);
/// aig.add_output("f", f);
/// assert_eq!(aig.num_inputs(), 2);
/// assert_eq!(aig.eval(&[true, false])[0], true);
/// ```
#[derive(Clone, Default)]
pub struct Aig {
    /// Packed first-fanin literal per node, or a sentinel for non-ANDs.
    fan0: Vec<u32>,
    /// Packed second-fanin literal per node; input position for inputs.
    fan1: Vec<u32>,
    /// Running AND-node count (`fan0[i] < SENTINEL_INPUT`).
    ands: usize,
    strash: Strash,
    inputs: Vec<Var>,
    input_names: Vec<String>,
    outputs: Vec<Output>,
}

impl Aig {
    /// Creates an empty AIG containing only the constant node.
    pub fn new() -> Self {
        Aig {
            fan0: vec![SENTINEL_CONST],
            fan1: vec![0],
            ands: 0,
            strash: Strash::default(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Total number of nodes, including the constant and all inputs.
    #[inline]
    pub fn len(&self) -> usize {
        self.fan0.len()
    }

    /// Returns `true` if the AIG contains only the constant node.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fan0.len() == 1
    }

    /// Number of primary (and pseudo-primary) inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of AND nodes currently allocated (including dangling ones).
    #[inline]
    pub fn num_ands(&self) -> usize {
        self.ands
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Returns the node stored at `var`, decoded from its SoA row.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of bounds.
    #[inline]
    pub fn node(&self, var: Var) -> Node {
        let i = var.index() as usize;
        let f0 = self.fan0[i];
        if f0 < SENTINEL_INPUT {
            Node::And {
                fan0: Lit::from_code(f0),
                fan1: Lit::from_code(self.fan1[i]),
            }
        } else if f0 == SENTINEL_INPUT {
            Node::Input { pos: self.fan1[i] }
        } else {
            Node::Constant
        }
    }

    /// Returns `true` if `var` is an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of bounds.
    #[inline]
    pub fn is_and(&self, var: Var) -> bool {
        self.fan0[var.index() as usize] < SENTINEL_INPUT
    }

    /// Returns `true` if `var` is an input node.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of bounds.
    #[inline]
    pub fn is_input(&self, var: Var) -> bool {
        self.fan0[var.index() as usize] == SENTINEL_INPUT
    }

    /// Returns the fanin literals of `var` if it is an AND node.
    ///
    /// This is the cheap accessor for traversal hot loops: it reads the two
    /// SoA columns directly without materializing a [`Node`].
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of bounds.
    #[inline]
    pub fn and_fanins(&self, var: Var) -> Option<(Lit, Lit)> {
        let i = var.index() as usize;
        let f0 = self.fan0[i];
        (f0 < SENTINEL_INPUT).then(|| (Lit::from_code(f0), Lit::from_code(self.fan1[i])))
    }

    /// Raw SoA fanin columns, for same-crate hot loops (simulation).
    ///
    /// Rows with `fan0 >= SENTINEL_INPUT` are not ANDs.
    #[inline]
    pub(crate) fn fanin_raw(&self) -> (&[u32], &[u32]) {
        (&self.fan0, &self.fan1)
    }

    /// Heap bytes held by the node core: both fanin columns plus the
    /// strash table. Excludes input/output names and the input list, which
    /// scale with I/O count rather than gate count.
    pub fn core_memory_bytes(&self) -> usize {
        self.fan0.capacity() * std::mem::size_of::<u32>()
            + self.fan1.capacity() * std::mem::size_of::<u32>()
            + self.strash.heap_bytes()
    }

    /// Returns all input variables in creation order.
    #[inline]
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// Returns the name of the input at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    #[inline]
    pub fn input_name(&self, pos: usize) -> &str {
        &self.input_names[pos]
    }

    /// Returns the input variable at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    #[inline]
    pub fn input_var(&self, pos: usize) -> Var {
        self.inputs[pos]
    }

    /// Returns the input position of `var`, or `None` if it is not an input.
    pub fn input_pos(&self, var: Var) -> Option<usize> {
        let i = var.index() as usize;
        (self.fan0[i] == SENTINEL_INPUT).then(|| self.fan1[i] as usize)
    }

    /// Finds an input variable by name.
    pub fn find_input(&self, name: &str) -> Option<Var> {
        self.input_names
            .iter()
            .position(|n| n == name)
            .map(|p| self.inputs[p])
    }

    /// Returns the primary outputs.
    #[inline]
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Returns the literal driving output `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn output_lit(&self, idx: usize) -> Lit {
        self.outputs[idx].lit
    }

    /// Finds an output index by name.
    pub fn find_output(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|o| o.name == name)
    }

    /// Appends a raw SoA row, enforcing the node-count cap that keeps
    /// packed literal codes below the sentinel range.
    fn push_raw(&mut self, f0: u32, f1: u32) -> Result<Var, TransformError> {
        let idx = self.fan0.len();
        if idx > MAX_INDEX as usize {
            return Err(TransformError::TooManyNodes);
        }
        self.fan0.push(f0);
        self.fan1.push(f1);
        Ok(var_at(idx))
    }

    /// Appends a fresh primary input and returns its positive literal.
    ///
    /// # Panics
    ///
    /// Panics if the node limit (2^31 - 1 nodes) is exceeded.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        let pos = u32::try_from(self.inputs.len()).expect("input count fits in u32");
        let var = self
            .push_raw(SENTINEL_INPUT, pos)
            .expect("AIG node limit exceeded (2^31 - 1 nodes)");
        self.inputs.push(var);
        self.input_names.push(name.into());
        var.pos()
    }

    /// Registers `lit` as a named primary output and returns its index.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) -> usize {
        self.outputs.push(Output {
            name: name.into(),
            lit,
        });
        self.outputs.len() - 1
    }

    /// Replaces the literal driving output `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set_output(&mut self, idx: usize, lit: Lit) {
        self.outputs[idx].lit = lit;
    }

    /// Removes all outputs (the logic itself is retained).
    pub fn clear_outputs(&mut self) {
        self.outputs.clear();
    }

    /// Builds the AND of two literals with constant folding and structural
    /// hashing.
    ///
    /// # Panics
    ///
    /// Panics if the node limit (2^31 - 1 nodes) is exceeded; use
    /// [`Aig::try_and`] to handle that case as a typed error.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        self.try_and(a, b)
            .expect("AIG node limit exceeded (2^31 - 1 nodes); use try_and")
    }

    /// Fallible form of [`Aig::and`]: returns
    /// [`TransformError::TooManyNodes`] instead of panicking when the node
    /// index space (2^31 - 1 nodes) is exhausted.
    pub fn try_and(&mut self, a: Lit, b: Lit) -> Result<Lit, TransformError> {
        // Constant and trivial folding.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Ok(Lit::FALSE);
        }
        if a == Lit::TRUE {
            return Ok(b);
        }
        if b == Lit::TRUE || a == b {
            return Ok(a);
        }
        let (fan0, fan1) = if a <= b { (a, b) } else { (b, a) };
        debug_assert!(
            (fan1.var().index() as usize) < self.fan0.len(),
            "fanin {fan1:?} out of bounds"
        );
        debug_assert!(fan0 <= fan1, "canonical fanin order");
        if let Some(v) = self
            .strash
            .lookup(&self.fan0, &self.fan1, fan0.code(), fan1.code())
        {
            return Ok(v.pos());
        }
        let var = self.push_raw(fan0.code(), fan1.code())?;
        self.ands += 1;
        self.strash.insert(&self.fan0, &self.fan1, var.index());
        Ok(var.pos())
    }

    /// Builds the OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Builds the XOR of two literals.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let t0 = self.and(a, !b);
        let t1 = self.and(!a, b);
        self.or(t0, t1)
    }

    /// Builds the XNOR (equivalence) of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Builds the implication `a -> b`.
    pub fn implies(&mut self, a: Lit, b: Lit) -> Lit {
        self.or(!a, b)
    }

    /// Builds the multiplexer `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let on = self.and(sel, t);
        let off = self.and(!sel, e);
        self.or(on, off)
    }

    /// Builds the AND of an arbitrary number of literals (balanced tree).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Self::and)
    }

    /// Builds the OR of an arbitrary number of literals (balanced tree).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::or)
    }

    /// Builds the XOR of an arbitrary number of literals (balanced tree).
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        unit: Lit,
        op: fn(&mut Self, Lit, Lit) -> Lit,
    ) -> Lit {
        match lits.len() {
            0 => unit,
            1 => lits[0],
            _ => {
                let mid = lits.len() / 2;
                let l = self.reduce_balanced(&lits[..mid], unit, op);
                let r = self.reduce_balanced(&lits[mid..], unit, op);
                op(self, l, r)
            }
        }
    }

    /// Evaluates all outputs for a single input assignment.
    ///
    /// `inputs[pos]` gives the value of the input at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs(), "input arity mismatch");
        let values = self.eval_all(inputs);
        self.outputs
            .iter()
            .map(|o| values[o.lit.var().index() as usize] ^ o.lit.is_complement())
            .collect()
    }

    /// Evaluates a single literal for a single input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_lit(&self, lit: Lit, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.num_inputs(), "input arity mismatch");
        let values = self.eval_all(inputs);
        values[lit.var().index() as usize] ^ lit.is_complement()
    }

    fn eval_all(&self, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.len()];
        for i in 0..self.len() {
            let f0 = self.fan0[i];
            values[i] = if f0 < SENTINEL_INPUT {
                let l0 = Lit::from_code(f0);
                let l1 = Lit::from_code(self.fan1[i]);
                (values[l0.var().index() as usize] ^ l0.is_complement())
                    && (values[l1.var().index() as usize] ^ l1.is_complement())
            } else if f0 == SENTINEL_INPUT {
                inputs[self.fan1[i] as usize]
            } else {
                false
            };
        }
        values
    }

    /// Iterates over all `(Var, Node)` pairs in topological (index) order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (Var, Node)> + '_ {
        (0..self.len()).map(|i| {
            let v = var_at(i);
            (v, self.node(v))
        })
    }

    /// Iterates over all AND nodes as `(Var, fan0, fan1)` in topological
    /// order, skipping the constant and input rows.
    pub fn iter_ands(&self) -> impl Iterator<Item = (Var, Lit, Lit)> + '_ {
        self.fan0
            .iter()
            .zip(&self.fan1)
            .enumerate()
            .filter(|&(_, (&f0, _))| f0 < SENTINEL_INPUT)
            .map(|(i, (&f0, &f1))| (var_at(i), Lit::from_code(f0), Lit::from_code(f1)))
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig {{ nodes: {}, inputs: {}, ands: {}, outputs: {} }}",
            self.len(),
            self.num_inputs(),
            self.num_ands(),
            self.num_outputs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitMix64;

    #[test]
    fn constant_folding_rules() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(Lit::FALSE, a), Lit::FALSE);
        assert_eq!(g.and(a, Lit::TRUE), a);
        assert_eq!(g.and(Lit::TRUE, a), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        // No AND node was created by any of the above.
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn xor_truth_table() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.xor(a, b);
        g.add_output("f", f);
        assert_eq!(g.eval(&[false, false]), vec![false]);
        assert_eq!(g.eval(&[false, true]), vec![true]);
        assert_eq!(g.eval(&[true, false]), vec![true]);
        assert_eq!(g.eval(&[true, true]), vec![false]);
    }

    #[test]
    fn mux_truth_table() {
        let mut g = Aig::new();
        let s = g.add_input("s");
        let t = g.add_input("t");
        let e = g.add_input("e");
        let f = g.mux(s, t, e);
        g.add_output("f", f);
        for s_v in [false, true] {
            for t_v in [false, true] {
                for e_v in [false, true] {
                    let expect = if s_v { t_v } else { e_v };
                    assert_eq!(g.eval(&[s_v, t_v, e_v]), vec![expect]);
                }
            }
        }
    }

    #[test]
    fn many_input_gates() {
        let mut g = Aig::new();
        let ins: Vec<Lit> = (0..5).map(|i| g.add_input(format!("i{i}"))).collect();
        let and_all = g.and_many(&ins);
        let or_all = g.or_many(&ins);
        let xor_all = g.xor_many(&ins);
        g.add_output("and", and_all);
        g.add_output("or", or_all);
        g.add_output("xor", xor_all);
        for pattern in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| pattern >> i & 1 == 1).collect();
            let ones = bits.iter().filter(|&&b| b).count();
            let out = g.eval(&bits);
            assert_eq!(out[0], ones == 5);
            assert_eq!(out[1], ones > 0);
            assert_eq!(out[2], ones % 2 == 1);
        }
    }

    #[test]
    fn empty_reductions_yield_units() {
        let mut g = Aig::new();
        assert_eq!(g.and_many(&[]), Lit::TRUE);
        assert_eq!(g.or_many(&[]), Lit::FALSE);
        assert_eq!(g.xor_many(&[]), Lit::FALSE);
    }

    #[test]
    fn output_management() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.or(a, b);
        let idx = g.add_output("f", f);
        assert_eq!(g.find_output("f"), Some(idx));
        assert_eq!(g.output_lit(idx), f);
        g.set_output(idx, !f);
        assert_eq!(g.output_lit(idx), !f);
        assert_eq!(g.find_output("nope"), None);
    }

    #[test]
    fn find_input_by_name() {
        let mut g = Aig::new();
        let a = g.add_input("alpha");
        let _ = g.add_input("beta");
        assert_eq!(g.find_input("alpha"), Some(a.var()));
        assert_eq!(g.find_input("gamma"), None);
        assert_eq!(g.input_name(0), "alpha");
        assert_eq!(g.input_pos(a.var()), Some(0));
    }

    #[test]
    fn accessors_agree_with_node_view() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let f = g.xor(a, b);
        g.add_output("f", f);
        for (v, n) in g.iter_nodes().collect::<Vec<_>>() {
            assert_eq!(g.is_and(v), n.is_and());
            assert_eq!(g.is_input(v), n.is_input());
            assert_eq!(g.and_fanins(v), n.fanins());
        }
        let from_iter: Vec<_> = g.iter_ands().map(|(v, _, _)| v).collect();
        let from_nodes: Vec<_> = g
            .iter_nodes()
            .filter(|(_, n)| n.is_and())
            .map(|(v, _)| v)
            .collect();
        assert_eq!(from_iter, from_nodes);
    }

    /// Replaying an identical build sequence after the strash has grown
    /// through several capacity doublings must return identical literals
    /// and create no new nodes.
    #[test]
    fn strash_shares_across_growth() {
        let build = |g: &mut Aig, ins: &[Lit]| -> Vec<Lit> {
            let mut rng = SplitMix64::new(0xdead_beef);
            let mut lits = ins.to_vec();
            let mut made = Vec::new();
            for _ in 0..4000 {
                let a = lits[rng.index(lits.len())].xor_complement(rng.chance(0.5));
                let b = lits[rng.index(lits.len())].xor_complement(rng.chance(0.5));
                let f = g.and(a, b);
                lits.push(f);
                made.push(f);
            }
            made
        };
        let mut g = Aig::new();
        let ins: Vec<Lit> = (0..12).map(|i| g.add_input(format!("i{i}"))).collect();
        let first = build(&mut g, &ins);
        let ands_after_first = g.num_ands();
        assert!(ands_after_first > 1000, "expected a non-trivial DAG");
        let second = build(&mut g, &ins);
        assert_eq!(first, second, "replay must hit the strash for every gate");
        assert_eq!(g.num_ands(), ands_after_first, "no duplicate nodes");
        // Every AND row is canonical and topologically ordered.
        for (v, f0, f1) in g.iter_ands() {
            assert!(f0 <= f1);
            assert!(f1.var() < v);
        }
    }

    /// The SoA core must hold its ~16 bytes/node budget. The hard upper
    /// bound here allows for worst-case growth slack (each u32 column may
    /// sit at 2x capacity right after a doubling, the strash at 8/3 slots
    /// per AND); the amortized figure the scale bench reports is ~16.
    #[test]
    fn core_memory_stays_lean() {
        let mut g = Aig::new();
        let ins: Vec<Lit> = (0..16).map(|i| g.add_input(format!("i{i}"))).collect();
        let mut rng = SplitMix64::new(7);
        let mut lits = ins;
        while g.num_ands() < 50_000 {
            let a = lits[rng.index(lits.len())].xor_complement(rng.chance(0.5));
            let b = lits[rng.index(lits.len())].xor_complement(rng.chance(0.5));
            lits.push(g.and(a, b));
        }
        let per_node = g.core_memory_bytes() as f64 / g.len() as f64;
        assert!(
            per_node <= 28.0,
            "core layout regressed to {per_node:.1} bytes/node"
        );
    }
}
