//! Deterministic k-frame unrolling.
//!
//! [`unroll`] expands a latch-bearing [`SeqNetlist`] into a purely
//! combinational [`Aig`] spanning `k` time frames. Frame-`f` copies of a
//! primary input or output `x` are named `x@f`; a latch with a
//! [`LatchInit::DontCare`] reset becomes a free input `state@init` shared
//! by every evaluation, so bounded equivalence over the unrolling
//! quantifies universally over unknown reset states. The per-frame named
//! -net maps are kept so the ECO engine can address any internal net of
//! any frame and later fold a per-frame patch back onto the sequential
//! design.
//!
//! Emission order is fixed — init inputs in latch order, then per frame:
//! primary inputs in declaration order, one [`Aig::import`] of the design
//! cone, outputs in declaration order — so the unrolled AIG is
//! byte-identical across runs and thread counts.

use std::collections::HashMap;

use eco_aig::{Aig, Lit};
use eco_netlist::LatchInit;

use crate::netlist::{SeqError, SeqNetlist};

/// A `k`-frame combinational expansion of a sequential design.
#[derive(Clone, Debug)]
pub struct Unrolled {
    /// The unrolled combinational logic. Inputs are `x@f` per primary
    /// input and `s@init` per don't-care latch; outputs are `o@f`.
    pub aig: Aig,
    /// Number of frames (at least 1).
    pub frames: usize,
    /// `nets[f]` maps every named net of the source design to its
    /// frame-`f` literal in [`Unrolled::aig`] (latch states included).
    pub nets: Vec<HashMap<String, Lit>>,
}

/// Unrolls `design` over `frames` time frames.
///
/// # Errors
///
/// [`SeqError::ZeroFrames`] when `frames == 0`;
/// [`SeqError::Transform`] if the expansion overflows the node budget.
pub fn unroll(design: &SeqNetlist, frames: usize) -> Result<Unrolled, SeqError> {
    if frames == 0 {
        return Err(SeqError::ZeroFrames);
    }
    let mut mgr = Aig::new();
    // Frame-0 state values; don't-care resets become free inputs.
    let mut state: Vec<Lit> = Vec::with_capacity(design.latches.len());
    for (k, l) in design.latches.iter().enumerate() {
        state.push(match l.init {
            LatchInit::Zero => Lit::FALSE,
            LatchInit::One => Lit::TRUE,
            LatchInit::DontCare => mgr.add_input(format!("{}@init", design.latch_name(k))),
        });
    }
    let pi_pos = design.primary_input_positions();
    let (roots, names) = design.roots();
    let n_out = design.aig.num_outputs();
    let n_latch = design.latches.len();
    let mut nets = Vec::with_capacity(frames);
    for f in 0..frames {
        let mut input_map: HashMap<eco_aig::Var, Lit> = HashMap::new();
        for &p in &pi_pos {
            let lit = mgr.add_input(format!("{}@{f}", design.aig.input_name(p)));
            input_map.insert(design.aig.input_var(p), lit);
        }
        for (l, &s) in design.latches.iter().zip(&state) {
            input_map.insert(l.state, s);
        }
        let imported = mgr.import(&design.aig, &roots, &input_map)?;
        for (out, &lit) in design.aig.outputs().iter().zip(&imported[..n_out]) {
            mgr.add_output(format!("{}@{f}", out.name), lit);
        }
        state = imported[n_out..n_out + n_latch].to_vec();
        let frame_nets: HashMap<String, Lit> = names
            .iter()
            .cloned()
            .zip(imported[n_out + n_latch..].iter().copied())
            .collect();
        nets.push(frame_nets);
    }
    Ok(Unrolled {
        aig: mgr,
        frames,
        nets,
    })
}

/// Unrolls two designs over the same `frames` into one manager with
/// shared inputs (matched by name) and returns the output pairs to
/// prove equal, in `(a, b)` declaration order of `a`'s outputs.
///
/// Inputs present in only one design stay free; both designs must expose
/// the same output names.
///
/// # Errors
///
/// [`SeqError::ZeroFrames`] / [`SeqError::Transform`] as for [`unroll`];
/// [`SeqError::UnknownNet`] if an output of `a` has no counterpart in
/// `b`.
pub fn unroll_miter(
    a: &SeqNetlist,
    b: &SeqNetlist,
    frames: usize,
) -> Result<(Aig, Vec<(Lit, Lit)>), SeqError> {
    let ua = unroll(a, frames)?;
    let ub = unroll(b, frames)?;
    let mut mgr = Aig::new();
    let mut by_name: HashMap<String, Lit> = HashMap::new();
    let mut map_a: HashMap<eco_aig::Var, Lit> = HashMap::new();
    let mut map_b: HashMap<eco_aig::Var, Lit> = HashMap::new();
    for (u, map) in [(&ua, &mut map_a), (&ub, &mut map_b)] {
        for pos in 0..u.aig.num_inputs() {
            let name = u.aig.input_name(pos);
            let lit = *by_name
                .entry(name.to_owned())
                .or_insert_with(|| mgr.add_input(name.to_owned()));
            map.insert(u.aig.input_var(pos), lit);
        }
    }
    let roots_a: Vec<Lit> = ua.aig.outputs().iter().map(|o| o.lit).collect();
    let roots_b: Vec<Lit> = ub.aig.outputs().iter().map(|o| o.lit).collect();
    let lits_a = mgr.import(&ua.aig, &roots_a, &map_a)?;
    let lits_b = mgr.import(&ub.aig, &roots_b, &map_b)?;
    let mut pairs = Vec::with_capacity(lits_a.len());
    for (out, &la) in ua.aig.outputs().iter().zip(&lits_a) {
        let idx = ub
            .aig
            .find_output(&out.name)
            .ok_or_else(|| SeqError::UnknownNet(out.name.clone()))?;
        pairs.push((la, lits_b[idx]));
    }
    Ok((mgr, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Latch;
    use eco_aig::write_aiger_ascii;

    fn sample() -> SeqNetlist {
        let mut aig = Aig::new();
        let d = aig.add_input("d");
        let s0 = aig.add_input("s0");
        let s1 = aig.add_input("s1");
        let w = aig.xor(d, s1);
        let q = aig.and(s0, s1);
        aig.add_output("q", q);
        let net_lits = HashMap::from([
            ("d".to_string(), d),
            ("s0".to_string(), s0),
            ("s1".to_string(), s1),
            ("w".to_string(), w),
            ("q".to_string(), q),
        ]);
        SeqNetlist::new(
            "sr",
            aig,
            vec![
                Latch {
                    state: s0.var(),
                    next: w,
                    init: LatchInit::Zero,
                },
                Latch {
                    state: s1.var(),
                    next: s0,
                    init: LatchInit::One,
                },
            ],
            net_lits,
        )
        .expect("valid")
    }

    /// Evaluates an unrolled AIG against named frame inputs.
    fn eval_unrolled(u: &Unrolled, stim: &[Vec<(&str, bool)>]) -> Vec<Vec<bool>> {
        let mut vals = vec![false; u.aig.num_inputs()];
        for (f, frame) in stim.iter().enumerate() {
            for (name, v) in frame {
                let var = u
                    .aig
                    .find_input(&format!("{name}@{f}"))
                    .expect("frame input");
                vals[u.aig.input_pos(var).expect("input")] = *v;
            }
        }
        let flat = u.aig.eval(&vals);
        (0..u.frames)
            .map(|f| {
                u.aig
                    .outputs()
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.name.ends_with(&format!("@{f}")))
                    .map(|(i, _)| flat[i])
                    .collect()
            })
            .collect()
    }

    #[test]
    fn unrolled_matches_simulation() {
        let sr = sample();
        let u = unroll(&sr, 5).expect("unrolls");
        assert_eq!(u.frames, 5);
        assert_eq!(u.aig.num_inputs(), 5); // d@0..d@4, no @init inputs
        assert_eq!(u.aig.num_outputs(), 5);
        for bits in 0u32..32 {
            let seq_stim: Vec<Vec<bool>> = (0..5).map(|f| vec![bits >> f & 1 == 1]).collect();
            let unr_stim: Vec<Vec<(&str, bool)>> =
                (0..5).map(|f| vec![("d", bits >> f & 1 == 1)]).collect();
            assert_eq!(
                sr.simulate(&seq_stim),
                eval_unrolled(&u, &unr_stim),
                "{bits:#b}"
            );
        }
    }

    #[test]
    fn frame_nets_track_internal_signals() {
        let sr = sample();
        let u = unroll(&sr, 3).expect("unrolls");
        assert_eq!(u.nets.len(), 3);
        for f in 0..3 {
            for name in ["d", "s0", "s1", "w", "q"] {
                assert!(u.nets[f].contains_key(name), "missing {name}@{f}");
            }
        }
        // Frame-0 latch states are the reset constants.
        assert_eq!(u.nets[0]["s0"], Lit::FALSE);
        assert_eq!(u.nets[0]["s1"], Lit::TRUE);
        // Frame-1 s1 equals frame-0 s0's next, i.e. frame-0 w.
        assert_eq!(u.nets[1]["s0"], u.nets[0]["w"]);
    }

    #[test]
    fn dontcare_init_becomes_free_input() {
        let mut sr = sample();
        sr.latches[1].init = LatchInit::DontCare;
        let u = unroll(&sr, 2).expect("unrolls");
        assert!(u.aig.find_input("s1@init").is_some());
        assert_eq!(u.nets[0]["s1"].var(), u.aig.find_input("s1@init").unwrap());
    }

    #[test]
    fn unrolling_is_deterministic() {
        let sr = sample();
        let a = write_aiger_ascii(&unroll(&sr, 4).expect("unrolls").aig);
        let b = write_aiger_ascii(&unroll(&sr, 4).expect("unrolls").aig);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_frames_is_rejected() {
        assert!(matches!(unroll(&sample(), 0), Err(SeqError::ZeroFrames)));
    }

    #[test]
    fn miter_of_design_with_itself_pairs_outputs() {
        let sr = sample();
        let (mgr, pairs) = unroll_miter(&sr, &sr, 3).expect("miter");
        assert_eq!(pairs.len(), 3);
        // Structurally hashed: identical designs share every node.
        for (a, b) in pairs {
            assert_eq!(a, b);
        }
        assert_eq!(mgr.num_inputs(), 3);
    }
}
