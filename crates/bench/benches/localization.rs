//! Criterion bench for Ablation A: the localization stage's effect on
//! end-to-end runtime on a difficult unit (§5 of the paper).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_core::{EcoEngine, EcoOptions};
use eco_workgen::contest_suite;

fn bench_localization(c: &mut Criterion) {
    let unit = contest_suite()
        .into_iter()
        .find(|u| u.spec.name == "unit10")
        .expect("unit10 exists");
    let inst = unit.instance().expect("valid");

    let mut group = c.benchmark_group("localization/unit10");
    group.sample_size(10);
    group.bench_function("with_localization", |b| {
        b.iter(|| {
            EcoEngine::new(inst.clone(), EcoOptions::default())
                .run()
                .expect("rectifiable")
        });
    });
    group.bench_function("without_localization", |b| {
        let opts = EcoOptions {
            localization: false,
            ..Default::default()
        };
        b.iter(|| {
            EcoEngine::new(inst.clone(), opts.clone())
                .run()
                .expect("rectifiable")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_localization);
criterion_main!(benches);
