//! 64-way parallel bit-vector simulation.
//!
//! Each node is simulated on 64 input patterns at once using one `u64` word
//! per node per word-column. This powers FRAIG signature computation and
//! randomized semantic checks.

use crate::{Aig, Lit, Node};

/// Result of a parallel simulation: one row of `words` 64-bit words per node.
#[derive(Clone, Debug)]
pub struct SimVectors {
    words: usize,
    values: Vec<u64>,
}

impl SimVectors {
    /// Number of 64-pattern word columns.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Returns the simulation words of a literal (complement applied).
    pub fn lit_words(&self, lit: Lit) -> Vec<u64> {
        let base = lit.var().index() as usize * self.words;
        let mask = if lit.is_complement() { !0u64 } else { 0 };
        self.values[base..base + self.words]
            .iter()
            .map(|&w| w ^ mask)
            .collect()
    }

    /// Returns the value of `lit` under pattern `pattern` (a global pattern
    /// index across all word columns).
    pub fn lit_bit(&self, lit: Lit, pattern: usize) -> bool {
        let word = pattern / 64;
        let bit = pattern % 64;
        let base = lit.var().index() as usize * self.words;
        let v = self.values[base + word] >> bit & 1 == 1;
        v ^ lit.is_complement()
    }

    /// A signature for equivalence-class hashing: the simulation words of
    /// the positive literal, canonicalized so that the first bit is 0
    /// (returns `(canonical_words, phase)` where `phase` is true if the
    /// words were complemented to canonicalize).
    pub fn signature(&self, lit: Lit) -> (Vec<u64>, bool) {
        let words = self.lit_words(lit.with_complement(false));
        let phase = words.first().is_some_and(|w| w & 1 == 1);
        if phase {
            (words.iter().map(|w| !w).collect(), true)
        } else {
            (words, false)
        }
    }
}

impl Aig {
    /// Simulates the whole AIG on the given input patterns.
    ///
    /// `patterns[pos]` holds `words` words of stimulus for the input at
    /// position `pos` (bit *b* of word *w* is pattern `64*w + b`).
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len() != self.num_inputs()` or rows have uneven
    /// lengths.
    pub fn simulate(&self, patterns: &[Vec<u64>]) -> SimVectors {
        assert_eq!(patterns.len(), self.num_inputs(), "stimulus arity mismatch");
        let words = patterns.first().map_or(1, Vec::len);
        assert!(
            patterns.iter().all(|p| p.len() == words),
            "uneven stimulus rows"
        );
        let mut values = vec![0u64; self.len() * words];
        for (v, node) in self.iter_nodes() {
            let base = v.index() as usize * words;
            match node {
                Node::Constant => {}
                Node::Input { pos } => {
                    values[base..base + words].copy_from_slice(&patterns[pos as usize]);
                }
                Node::And { fan0, fan1 } => {
                    let b0 = fan0.var().index() as usize * words;
                    let b1 = fan1.var().index() as usize * words;
                    let m0 = if fan0.is_complement() { !0u64 } else { 0 };
                    let m1 = if fan1.is_complement() { !0u64 } else { 0 };
                    for w in 0..words {
                        let a = values[b0 + w] ^ m0;
                        let b = values[b1 + w] ^ m1;
                        values[base + w] = a & b;
                    }
                }
            }
        }
        SimVectors { words, values }
    }

    /// Simulates with `words * 64` uniformly random patterns from `seed`
    /// (xorshift; deterministic across runs).
    pub fn simulate_random(&self, words: usize, seed: u64) -> SimVectors {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let patterns: Vec<Vec<u64>> = (0..self.num_inputs())
            .map(|_| (0..words).map(|_| next()).collect())
            .collect();
        self.simulate(&patterns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_matches_eval() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let f = aig.mux(a, b, c);
        let g = aig.xor(f, c);
        aig.add_output("f", f);
        aig.add_output("g", g);

        // Exhaustive 8 patterns packed into one word per input.
        let patterns: Vec<Vec<u64>> = (0..3)
            .map(|i| {
                let mut w = 0u64;
                for p in 0..8u32 {
                    if p >> i & 1 == 1 {
                        w |= 1 << p;
                    }
                }
                vec![w]
            })
            .collect();
        let sim = aig.simulate(&patterns);
        for p in 0..8usize {
            let bits: Vec<bool> = (0..3).map(|i| p >> i & 1 == 1).collect();
            let out = aig.eval(&bits);
            assert_eq!(sim.lit_bit(f, p), out[0], "f pattern {p}");
            assert_eq!(sim.lit_bit(g, p), out[1], "g pattern {p}");
        }
    }

    #[test]
    fn complemented_lit_words() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let sim = aig.simulate(&[vec![0b1010]]);
        assert_eq!(sim.lit_words(a)[0], 0b1010);
        assert_eq!(sim.lit_words(!a)[0], !0b1010u64);
    }

    #[test]
    fn signature_canonicalization() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let sim = aig.simulate(&[vec![0b1011]]);
        let (sig_pos, ph_pos) = sim.signature(a);
        let (sig_neg, ph_neg) = sim.signature(!a);
        // The signature identifies the *node*, so both literals of the same
        // node share the canonical signature and phase.
        assert_eq!(sig_pos, sig_neg);
        assert_eq!(ph_pos, ph_neg);
        // First pattern bit of `a` is 1, so canonicalization flipped it.
        assert!(ph_pos);
        assert_eq!(sig_pos[0], !0b1011u64);
    }

    #[test]
    fn random_simulation_is_deterministic() {
        let mut aig = Aig::new();
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let f = aig.and(a, b);
        let s1 = aig.simulate_random(2, 42);
        let s2 = aig.simulate_random(2, 42);
        assert_eq!(s1.lit_words(f), s2.lit_words(f));
    }

    #[test]
    fn constant_simulates_to_zero() {
        let aig = Aig::new();
        let sim = aig.simulate(&[]);
        assert_eq!(sim.lit_words(Lit::FALSE)[0], 0);
        assert_eq!(sim.lit_words(Lit::TRUE)[0], !0u64);
    }
}
