//! The cost-optimization stage (§6): per-target rebasing driven by base
//! selection, iterated until no further cost reduction.

use std::collections::HashMap;

use eco_aig::{Lit, Var};

use crate::baseselect::{select_base, BaseSelectOptions};
use crate::carediff::on_off_sets;
use crate::govern::Budget;
use crate::localize::Cut;
use crate::patchgen::PatchFn;
use crate::rebase::{resynthesize_ctl, RebaseQuery};
use crate::Workspace;

/// Knobs for the optimization stage.
#[derive(Clone, Debug)]
pub struct OptimizeOptions {
    /// Base-selection parameters (§6.2).
    pub base_select: BaseSelectOptions,
    /// Cap on the candidate pool per query: the current base plus the
    /// cheapest remaining candidates up to this size.
    pub max_pool: usize,
    /// Outer improvement rounds over all targets.
    pub max_rounds: usize,
    /// SAT conflict budget for resynthesis queries.
    pub conflict_budget: u64,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            base_select: BaseSelectOptions::default(),
            max_pool: 32,
            max_rounds: 2,
            conflict_budget: 100_000,
        }
    }
}

/// Statistics from the optimization stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptimizeStats {
    /// Outer rounds executed.
    pub rounds: usize,
    /// Number of (target, round) pairs where the patch was replaced.
    pub improvements: usize,
    /// Total base cost before optimization.
    pub cost_before: u64,
    /// Total base cost after optimization.
    pub cost_after: u64,
}

fn patch_base(ws: &Workspace, patch: &PatchFn) -> (u64, Option<Vec<usize>>) {
    let used = patch.cut.used_signals(&ws.mgr, &[patch.lit]);
    let mut cands = Vec::new();
    let mut cost = 0;
    for &s in &used {
        let sig = &patch.cut.signals[s];
        cost += sig.weight;
        match sig.cand_idx {
            Some(i) => cands.push(i),
            None => return (cost, None),
        }
    }
    (cost, Some(cands))
}

/// Contest cost metric: weight of the *union* of used base signals.
pub fn total_cost(ws: &Workspace, patches: &[PatchFn]) -> u64 {
    let merged = Cut::merge(patches.iter().map(|p| &p.cut));
    let roots: Vec<Lit> = patches.iter().map(|p| p.lit).collect();
    merged.used_cost(&ws.mgr, &roots)
}

/// Optimizes the patches in place (§6): for each target, the
/// specification is recomputed with every *other* patch substituted, a
/// [`RebaseQuery`] explores cheaper bases with [`select_base`], and a
/// strictly cheaper (or equally cheap but smaller) base triggers
/// interpolation-based resynthesis.
pub fn optimize_patches(
    ws: &mut Workspace,
    patches: &mut [PatchFn],
    opts: &OptimizeOptions,
    tel: &crate::Telemetry,
) -> OptimizeStats {
    optimize_patches_governed(ws, patches, opts, &Budget::unlimited(), tel)
}

/// [`optimize_patches`] under a resource governor: the per-query conflict
/// budget is capped by the governor's cluster allowance, every rebase
/// query is enrolled in the deadline/cancellation control block, and the
/// stage stops between targets once the deadline fires. Degrading here is
/// always sound — the incoming patches are already correct; optimization
/// only ever swaps them for cheaper equivalents.
pub(crate) fn optimize_patches_governed(
    ws: &mut Workspace,
    patches: &mut [PatchFn],
    opts: &OptimizeOptions,
    budget: &Budget,
    tel: &crate::Telemetry,
) -> OptimizeStats {
    let conflict_budget = budget.cap(opts.conflict_budget);
    let ctl = budget.ctl();
    let mut stats = OptimizeStats {
        cost_before: total_cost(ws, patches),
        ..Default::default()
    };
    // The per-target moves below use a *local* acceptance test, which lets
    // the search walk through configurations whose union cost temporarily
    // rises (rebasing one patch can break sharing with another). The best
    // union-cost configuration seen is snapshotted and restored at the
    // end, so the stage as a whole never regresses the contest metric.
    let mut best: Vec<PatchFn> = patches.to_vec();
    let mut best_total = stats.cost_before;
    'rounds: for _round in 0..opts.max_rounds {
        stats.rounds += 1;
        let mut improved_this_round = false;
        for p in 0..patches.len() {
            if budget.expired() {
                break 'rounds;
            }
            let k = patches[p].target;
            let cur_lit = patches[p].lit;
            let t = ws.target_vars[k];

            // Specification: all other patches fixed, t_k free.
            let other_map: HashMap<Var, Lit> = patches
                .iter()
                .filter(|q| q.target != k)
                .map(|q| (ws.target_vars[q.target], q.lit))
                .collect();
            let f_outs = ws.f_outs.clone();
            let g_outs = ws.g_outs.clone();
            let f_spec = ws.mgr.substitute(&f_outs, &other_map);
            let onoff = on_off_sets(&mut ws.mgr, &f_spec, &g_outs, t);

            // Constant shortcuts: an empty on-set (resp. off-set) admits a
            // zero-cost constant patch.
            if onoff.on == Lit::FALSE && cur_lit != Lit::FALSE {
                patches[p].lit = Lit::FALSE;
                patches[p].cut = Cut::default();
                stats.improvements += 1;
                improved_this_round = true;
                let total = total_cost(ws, patches);
                if total <= best_total {
                    best_total = total;
                    best = patches.to_vec();
                }
                continue;
            }
            if onoff.off == Lit::FALSE && cur_lit != Lit::TRUE {
                patches[p].lit = Lit::TRUE;
                patches[p].cut = Cut::default();
                stats.improvements += 1;
                improved_this_round = true;
                let total = total_cost(ws, patches);
                if total <= best_total {
                    best_total = total;
                    best = patches.to_vec();
                }
                continue;
            }

            let (cur_cost, Some(cur_base)) = patch_base(ws, &patches[p]) else {
                // Base uses an un-weighted signal: cannot rebase safely.
                continue;
            };
            if cur_cost == 0 {
                continue;
            }

            // Candidate pool: current base + cheapest candidates.
            let mut pool: Vec<usize> = cur_base.clone();
            let mut by_weight: Vec<usize> = (0..ws.cands.len()).collect();
            by_weight.sort_by_key(|&i| (ws.cands[i].weight, ws.cands[i].name.clone()));
            for i in by_weight {
                if pool.len() >= opts.max_pool.max(cur_base.len()) {
                    break;
                }
                if !pool.contains(&i) {
                    pool.push(i);
                }
            }

            let mut q = RebaseQuery::new(ws, onoff.on, onoff.off, pool.clone());
            if !ctl.is_unlimited() {
                q.set_ctl(&ctl);
            }
            let initial: Vec<usize> = cur_base
                .iter()
                .map(|c| pool.iter().position(|x| x == c).expect("base in pool"))
                .collect();
            if q.feasible(&initial, conflict_budget) != Some(true) {
                tel.record_solver(&q.stats());
                continue;
            }
            // Cheap pruning via the final-conflict core before selection.
            let start = {
                let core = q.feasible_core();
                if !core.is_empty() && q.feasible(&core, conflict_budget) == Some(true) {
                    core
                } else {
                    initial
                }
            };
            let sel = select_base(ws, &mut q, &start, &opts.base_select);
            tel.record_solver(&q.stats());
            // Pre-filter on the per-patch cost; the binding acceptance test
            // below is on the *union* cost (the contest metric), because a
            // locally cheaper base can destroy sharing with other patches.
            let candidate_better =
                sel.cost < cur_cost || (sel.cost == cur_cost && sel.base.len() < cur_base.len());
            if !candidate_better {
                continue;
            }
            let base_cands: Vec<usize> = sel.base.iter().map(|&i| pool[i]).collect();
            if let Some(new_lit) = resynthesize_ctl(
                ws,
                onoff.on,
                onoff.off,
                &base_cands,
                conflict_budget,
                &ctl,
                tel,
            ) {
                patches[p].lit = new_lit;
                patches[p].cut = Cut::from_candidates(ws, &base_cands);
                stats.improvements += 1;
                improved_this_round = true;
                let total = total_cost(ws, patches);
                if total <= best_total {
                    best_total = total;
                    best = patches.to_vec();
                }
            }
        }
        if !improved_this_round {
            break;
        }
    }
    // Restore the cheapest configuration seen.
    if total_cost(ws, patches) > best_total {
        patches.clone_from_slice(&best);
    }
    stats.cost_after = total_cost(ws, patches);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localize::TapMap;
    use crate::{cluster_targets, generate_group_patches, EcoInstance};
    use eco_netlist::{parse_verilog, WeightTable};

    /// The needed function a&b exists as cheap net `w`; PIs are expensive.
    #[test]
    fn optimizer_rebases_to_cheap_existing_net() {
        let faulty = parse_verilog(
            "module f (a, b, c, t, y, u); input a, b, c, t; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, t, c); buf g2 (u, w); endmodule",
        )
        .expect("faulty");
        let golden = parse_verilog(
            "module g (a, b, c, y, u); input a, b, c; output y, u; \
             wire w; and g0 (w, a, b); xor g1 (y, w, c); buf g2 (u, w); endmodule",
        )
        .expect("golden");
        let mut weights = WeightTable::new(50);
        weights.set("w", 2);
        let inst = EcoInstance::from_netlists("opt", &faulty, &golden, vec!["t".into()], &weights)
            .expect("instance");
        let mut ws = Workspace::new(&inst);
        let clustering = cluster_targets(&ws);
        let tap = TapMap::empty();
        let group = generate_group_patches(
            &mut ws,
            &tap,
            &clustering.clusters[0],
            &crate::PatchGenOptions::default(),
            &crate::Telemetry::new(),
        );
        let mut patches = group.patches;
        let stats = optimize_patches(
            &mut ws,
            &mut patches,
            &OptimizeOptions::default(),
            &crate::Telemetry::new(),
        );
        assert!(stats.cost_after < stats.cost_before, "stats {stats:?}");
        assert_eq!(stats.cost_after, 2);
        // Patch is still correct: equals a & b.
        let mut mgr = ws.mgr.clone();
        mgr.clear_outputs();
        mgr.add_output("p", patches[0].lit);
        for bits in 0u32..16 {
            let vals: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(mgr.eval(&vals)[0], vals[0] && vals[1]);
        }
    }

    /// A target whose on-set is empty gets a constant patch.
    #[test]
    fn constant_shortcut_applies() {
        let faulty = parse_verilog(
            "module f (a, t, y); input a, t; output y; \
             wire nt; not g0 (nt, t); and g1 (y, a, nt); endmodule",
        )
        .expect("faulty");
        // Golden y = a: achieved with t = 0.
        let golden = parse_verilog("module g (a, y); input a; output y; buf g0 (y, a); endmodule")
            .expect("golden");
        let inst = EcoInstance::from_netlists(
            "const",
            &faulty,
            &golden,
            vec!["t".into()],
            &WeightTable::new(5),
        )
        .expect("instance");
        let mut ws = Workspace::new(&inst);
        let clustering = cluster_targets(&ws);
        let tap = TapMap::empty();
        let group = generate_group_patches(
            &mut ws,
            &tap,
            &clustering.clusters[0],
            &crate::PatchGenOptions::default(),
            &crate::Telemetry::new(),
        );
        let mut patches = group.patches;
        let stats = optimize_patches(
            &mut ws,
            &mut patches,
            &OptimizeOptions::default(),
            &crate::Telemetry::new(),
        );
        assert_eq!(patches[0].lit, Lit::FALSE);
        assert_eq!(stats.cost_after, 0);
    }
}
