//! End-to-end sequential ECO: generate a latch-bearing golden design,
//! cut a fault into a floating target, emit the case through the format
//! hub, read it back from disk, rectify with [`eco::seq::SeqEcoEngine`],
//! and verify the patched design against golden — by a fresh unrolled
//! SAT miter *and* a cycle-accurate simulation cross-check. A second
//! test pins jobs-invariance: the folded sequential patch must be
//! byte-identical for every `jobs` value.

use eco::aig::SplitMix64;
use eco::core::{check_equivalence, EcoOptions, VerifyOutcome};
use eco::seq::hub::{read_design, Format};
use eco::seq::{unroll_miter, write_btor2, SeqEcoEngine, SeqEcoOptions, SeqEcoResult};
use eco::workgen::{gen_seq_unit, write_seq_unit, SeqUnit};

fn some_unit(index: u64) -> SeqUnit {
    (0..64)
        .find_map(|s| gen_seq_unit(index, s, 1))
        .expect("some seed yields a unit")
}

fn rectify(unit: &SeqUnit, jobs: usize) -> SeqEcoResult {
    SeqEcoEngine::new(
        unit.faulty.clone(),
        unit.golden.clone(),
        unit.targets.clone(),
        unit.weights.clone(),
        SeqEcoOptions {
            frames: unit.frames,
            eco: EcoOptions {
                jobs,
                ..Default::default()
            },
        },
    )
    .expect("valid engine")
    .run()
    .expect("rectifiable by construction")
}

#[test]
fn disk_round_tripped_case_rectifies_and_verifies() {
    let unit = some_unit(0);
    let dir = std::env::temp_dir().join(format!("eco-seq-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    write_seq_unit(&dir, &unit).expect("unit emits");

    // The engine consumes the on-disk BTOR2 pair, not the in-memory one:
    // the whole parser/writer stack is on the verified path.
    let read = |stem: &str| {
        let path = dir.join(format!("{}_{stem}.btor2", unit.name));
        read_design(Format::Btor2, &std::fs::read(&path).expect("read"))
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
    };
    let golden = read("golden");
    let faulty = read("faulty");
    let result = SeqEcoEngine::new(
        faulty,
        golden.clone(),
        unit.targets.clone(),
        unit.weights.clone(),
        SeqEcoOptions {
            frames: unit.frames,
            eco: EcoOptions::default(),
        },
    )
    .expect("valid engine")
    .run()
    .expect("rectifiable by construction");

    // Independent proof: a fresh unrolled miter over the engine's frame
    // count, not the engine's own verdict.
    let (mut miter, pairs) =
        unroll_miter(&result.patched, &golden, unit.frames).expect("miter builds");
    assert_eq!(
        check_equivalence(&mut miter, &pairs, 1 << 30),
        VerifyOutcome::Equivalent,
        "patched design must match golden over {} frames",
        unit.frames
    );

    // Cycle-accurate simulation cross-check from reset.
    let n_pi = golden.primary_input_positions().len();
    let mut rng = SplitMix64::new(0xe2e);
    for _ in 0..64 {
        let stim: Vec<Vec<bool>> = (0..unit.frames)
            .map(|_| (0..n_pi).map(|_| rng.chance(0.5)).collect())
            .collect();
        assert_eq!(
            golden.simulate(&stim),
            result.patched.simulate(&stim),
            "simulation diverged on {stim:?}"
        );
    }

    // The folded patch is time-invariant: no frame-indexed inputs leak.
    for p in 0..result.patch_aig.num_inputs() {
        let name = result.patch_aig.input_name(p);
        assert!(!name.contains('@'), "frame-indexed patch input `{name}`");
    }
}

#[test]
fn folded_patch_is_jobs_invariant() {
    // Both generator families.
    for index in [0, 1] {
        let unit = some_unit(index);
        let baseline = rectify(&unit, 1);
        for jobs in [2, 4, 0] {
            let other = rectify(&unit, jobs);
            assert_eq!(baseline.cost, other.cost, "jobs={jobs}: cost differs");
            assert_eq!(baseline.size, other.size, "jobs={jobs}: size differs");
            assert_eq!(
                baseline.fold_frames, other.fold_frames,
                "jobs={jobs}: fold frames differ"
            );
            assert_eq!(
                write_btor2(&baseline.patched),
                write_btor2(&other.patched),
                "jobs={jobs}: patched design is not byte-identical"
            );
            assert_eq!(
                format!("{:?}", baseline.patch_aig),
                format!("{:?}", other.patch_aig),
                "jobs={jobs}: patch AIG differs structurally"
            );
        }
    }
}
