//! Patch assembly: splicing a generated patch AIG back into the faulty
//! gate-level netlist.
//!
//! The engine's [`EcoResult`](crate::EcoResult) carries the patch as a
//! standalone AIG whose inputs name existing nets of the faulty circuit
//! and whose outputs name the rectification targets. [`splice_patch`]
//! produces the patched netlist: targets stop being pseudo-inputs and are
//! driven by the patch logic instead. All name resolution is validated —
//! a patch that references a net the circuit does not have surfaces as
//! [`EcoError::UnknownPatchInput`] instead of a panic, so generated or
//! hand-edited patches can never abort the process.

use std::collections::HashSet;

use eco_aig::Aig;
use eco_netlist::{netlist_from_aig, Gate, NetRef, Netlist};

use crate::EcoError;

/// Splices `patch` into `faulty`, returning the patched netlist.
///
/// Requirements checked up front:
///
/// * every patch *output* names an input of `faulty` (the floating target
///   pseudo-inputs) — otherwise [`EcoError::UnknownTarget`];
/// * every patch *input* names an existing net of `faulty` (declared or
///   gate-driven) that is not itself a target — otherwise
///   [`EcoError::UnknownPatchInput`] (a patch reading a target would form
///   a combinational cycle through itself).
///
/// The returned module is `<faulty.name>_patched`: targets move from the
/// input list to the wire list, patch-internal wires are prefixed with a
/// collision-free prefix, and the patch gates are appended.
pub fn splice_patch(faulty: &Netlist, patch: &Aig) -> Result<Netlist, EcoError> {
    let patch_nl = netlist_from_aig(patch, "patch");
    let targets: HashSet<&str> = patch_nl.outputs.iter().map(String::as_str).collect();

    for t in &patch_nl.outputs {
        if !faulty.inputs.contains(t) {
            return Err(EcoError::UnknownTarget(t.clone()));
        }
    }
    let known: HashSet<&str> = faulty
        .declared_nets()
        .chain(faulty.gates.iter().map(|g| g.output.as_str()))
        .collect();
    for i in &patch_nl.inputs {
        if targets.contains(i.as_str()) || !known.contains(i.as_str()) {
            return Err(EcoError::UnknownPatchInput(i.clone()));
        }
    }

    // A wire prefix no existing net uses, so patch internals cannot
    // collide with (or double-drive) faulty nets.
    let mut prefix = String::from("eco_");
    while known.iter().any(|n| n.starts_with(&prefix)) {
        prefix.insert(0, '_');
    }

    let mut combined = faulty.clone();
    combined.name = format!("{}_patched", faulty.name);
    combined.inputs.retain(|i| !targets.contains(i.as_str()));
    combined.wires.extend(patch_nl.outputs.iter().cloned());

    let rename = |n: &str| -> String {
        if patch_nl.wires.iter().any(|w| w == n) {
            format!("{prefix}{n}")
        } else {
            n.to_string()
        }
    };
    for w in &patch_nl.wires {
        combined.wires.push(format!("{prefix}{w}"));
    }
    for g in &patch_nl.gates {
        combined.gates.push(Gate {
            kind: g.kind,
            name: None,
            output: rename(&g.output),
            inputs: g
                .inputs
                .iter()
                .map(|r| match r {
                    NetRef::Named(n) => NetRef::Named(rename(n)),
                    c => c.clone(),
                })
                .collect(),
        });
    }
    Ok(combined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{elaborate, parse_verilog};

    fn faulty() -> Netlist {
        parse_verilog(
            "module f (a, b, c, t, y); input a, b, c, t; output y; \
             wire u; and g0 (u, a, b); xor g1 (y, t, c); endmodule",
        )
        .expect("faulty parses")
    }

    /// Patch t = a & b; the patched circuit computes (a&b) ^ c.
    #[test]
    fn splice_drives_target_with_patch_logic() {
        let mut patch = Aig::new();
        let a = patch.add_input("a");
        let b = patch.add_input("b");
        let ab = patch.and(a, b);
        patch.add_output("t", ab);

        let combined = splice_patch(&faulty(), &patch).expect("valid patch");
        assert!(!combined.inputs.contains(&"t".to_string()));
        assert!(combined.wires.contains(&"t".to_string()));
        let e = elaborate(&combined).expect("patched elaborates");
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let want = (vals[0] && vals[1]) ^ vals[2];
            let pv: Vec<bool> = (0..e.aig.num_inputs())
                .map(|p| match e.aig.input_name(p) {
                    "a" => vals[0],
                    "b" => vals[1],
                    "c" => vals[2],
                    other => panic!("unexpected input {other}"),
                })
                .collect();
            assert_eq!(e.aig.eval(&pv), vec![want]);
        }
    }

    /// Patch wires that shadow faulty nets are renamed, not double-driven.
    #[test]
    fn splice_renames_colliding_patch_wires() {
        let mut patch = Aig::new();
        let a = patch.add_input("a");
        let c = patch.add_input("c");
        let n = patch.and(a, c);
        let m = patch.and(!n, a);
        patch.add_output("t", m);
        let combined = splice_patch(&faulty(), &patch).expect("valid patch");
        // Every net is driven at most once.
        let mut seen = HashSet::new();
        for g in &combined.gates {
            assert!(seen.insert(g.output.clone()), "double-driven {}", g.output);
        }
        assert!(elaborate(&combined).is_ok());
    }

    #[test]
    fn unknown_patch_input_is_typed_error() {
        let mut patch = Aig::new();
        let q = patch.add_input("no_such_net");
        patch.add_output("t", q);
        let err = splice_patch(&faulty(), &patch).expect_err("bogus input");
        assert_eq!(err, EcoError::UnknownPatchInput("no_such_net".into()));
    }

    #[test]
    fn patch_reading_its_own_target_is_rejected() {
        let mut patch = Aig::new();
        let t = patch.add_input("t");
        patch.add_output("t", !t);
        let err = splice_patch(&faulty(), &patch).expect_err("cyclic patch");
        assert_eq!(err, EcoError::UnknownPatchInput("t".into()));
    }

    #[test]
    fn unknown_target_is_typed_error() {
        let mut patch = Aig::new();
        let a = patch.add_input("a");
        patch.add_output("zz", a);
        let err = splice_patch(&faulty(), &patch).expect_err("zz is not an input");
        assert_eq!(err, EcoError::UnknownTarget("zz".into()));
    }
}
