//! Cross-crate integration tests: the full flow from netlist text to a
//! spliced, re-elaborated, exhaustively checked patch.

mod common;

use eco::core::{EcoEngine, EcoError, EcoInstance, EcoOptions, InitialPatchKind};
use eco::netlist::{parse_verilog, Netlist, WeightTable};

fn pair(faulty: &str, golden: &str) -> (Netlist, Netlist) {
    (
        parse_verilog(faulty).expect("faulty"),
        parse_verilog(golden).expect("golden"),
    )
}

fn run_and_check(
    faulty: &Netlist,
    golden: &Netlist,
    targets: &[&str],
    weights: &WeightTable,
    options: EcoOptions,
) -> eco::core::EcoResult {
    let instance = EcoInstance::from_netlists(
        "it",
        faulty,
        golden,
        targets.iter().map(|s| s.to_string()).collect(),
        weights,
    )
    .expect("valid instance");
    let result = EcoEngine::new(instance, options)
        .run()
        .expect("rectifiable");
    common::assert_patched_equals_golden(faulty, golden, &result);
    result
}

/// All four option combinations on a single-target instance.
#[test]
fn option_matrix_single_target() {
    let (faulty, golden) = pair(
        "module f (a, b, c, d, t, y, z); input a, b, c, d, t; output y, z; \
         wire m; or g0 (m, c, d); xor g1 (y, t, m); nand g2 (z, a, m); endmodule",
        "module g (a, b, c, d, y, z); input a, b, c, d; output y, z; \
         wire m, w; or g0 (m, c, d); and g1 (w, a, b); xor g2 (y, w, m); \
         nand g3 (z, a, m); endmodule",
    );
    let weights = WeightTable::new(4);
    for localization in [false, true] {
        for optimize in [false, true] {
            for initial in [
                InitialPatchKind::OnSet,
                InitialPatchKind::NegOffSet,
                InitialPatchKind::Interpolant,
            ] {
                let options = EcoOptions {
                    localization,
                    optimize,
                    initial_patch: initial,
                    ..Default::default()
                };
                let r = run_and_check(&faulty, &golden, &["t"], &weights, options);
                assert_eq!(r.patches.len(), 1, "loc={localization} opt={optimize}");
            }
        }
    }
}

/// Three targets in one cluster plus one independent target.
#[test]
fn mixed_clusters_multi_target() {
    let (faulty, golden) = pair(
        "module f (a, b, c, t1, t2, t3, o1, o2, o3); \
         input a, b, c, t1, t2, t3; output o1, o2, o3; \
         and g1 (o1, t1, t2); or g2 (o2, t2, a); xor g3 (o3, t3, c); endmodule",
        "module g (a, b, c, o1, o2, o3); input a, b, c; output o1, o2, o3; \
         wire ab, bc; and g0 (ab, a, b); and g4 (bc, b, c); \
         and g1 (o1, ab, bc); or g2 (o2, bc, a); xor g3 (o3, ab, c); endmodule",
    );
    let r = run_and_check(
        &faulty,
        &golden,
        &["t1", "t2", "t3"],
        &WeightTable::new(2),
        EcoOptions::default(),
    );
    assert_eq!(r.patches.len(), 3);
}

/// The patch must reuse an existing cheap net when PIs are expensive.
#[test]
fn cost_aware_patch_reuses_intermediate_signal() {
    let (faulty, golden) = pair(
        "module f (a, b, c, t, y, u); input a, b, c, t; output y, u; \
         wire w; and g0 (w, a, b); xor g1 (y, t, c); buf g2 (u, w); endmodule",
        "module g (a, b, c, y, u); input a, b, c; output y, u; \
         wire w; and g0 (w, a, b); xor g1 (y, w, c); buf g2 (u, w); endmodule",
    );
    let mut weights = WeightTable::new(100);
    weights.set("w", 1);
    let r = run_and_check(&faulty, &golden, &["t"], &weights, EcoOptions::default());
    assert_eq!(r.cost, 1);
    assert_eq!(r.patches[0].base, vec!["w"]);

    let baseline = {
        let instance =
            EcoInstance::from_netlists("it-base", &faulty, &golden, vec!["t".into()], &weights)
                .expect("valid instance");
        EcoEngine::new(instance, EcoOptions::baseline())
            .run()
            .expect("rectifiable")
    };
    common::assert_patched_equals_golden(&faulty, &golden, &baseline);
    assert!(baseline.cost > r.cost);
}

/// Unrectifiable: an output outside every target cone disagrees.
#[test]
fn unrectifiable_instances_error_cleanly() {
    let (faulty, golden) = pair(
        "module f (a, t, y, z); input a, t; output y, z; \
         buf g1 (y, t); buf g2 (z, a); endmodule",
        "module g (a, y, z); input a; output y, z; \
         buf g1 (y, a); not g2 (z, a); endmodule",
    );
    let instance = EcoInstance::from_netlists(
        "bad",
        &faulty,
        &golden,
        vec!["t".into()],
        &WeightTable::new(1),
    )
    .expect("valid instance");
    for options in [EcoOptions::default(), EcoOptions::baseline()] {
        let err = EcoEngine::new(instance.clone(), options).run().unwrap_err();
        assert!(matches!(err, EcoError::Unrectifiable(_)), "{err}");
    }
}

/// Constant patches: a target whose golden function is constant.
#[test]
fn constant_function_target() {
    let (faulty, golden) = pair(
        "module f (a, t, y); input a, t; output y; or g1 (y, t, a); endmodule",
        "module g (a, y); input a; output y; \
         wire na, one; not g0 (na, a); or g1 (one, a, na); buf g2 (y, one); endmodule",
    );
    // Golden y = 1; patch t = 1 works (cost 0 after optimization).
    let r = run_and_check(
        &faulty,
        &golden,
        &["t"],
        &WeightTable::new(7),
        EcoOptions::default(),
    );
    assert_eq!(r.cost, 0);
    assert_eq!(r.size, 0);
}

/// A target that is also directly a primary output driver.
#[test]
fn target_driving_output_directly() {
    let (faulty, golden) = pair(
        "module f (a, b, t, y); input a, b, t; output y; buf g1 (y, t); endmodule",
        "module g (a, b, y); input a, b; output y; xnor g1 (y, a, b); endmodule",
    );
    let r = run_and_check(
        &faulty,
        &golden,
        &["t"],
        &WeightTable::new(1),
        EcoOptions::default(),
    );
    assert_eq!(r.patches.len(), 1);
    assert!(r.size >= 1);
}

/// Identical circuits: zero-diff instance still succeeds with a trivial
/// patch for the floating target.
#[test]
fn zero_diff_instance() {
    let (faulty, golden) = pair(
        "module f (a, b, t, y, u); input a, b, t; output y, u; \
         and g1 (y, a, b); buf g2 (u, t); endmodule",
        "module g (a, b, y, u); input a, b; output y, u; \
         and g1 (y, a, b); or g2 (u, a, b); endmodule",
    );
    let r = run_and_check(
        &faulty,
        &golden,
        &["t"],
        &WeightTable::new(1),
        EcoOptions::default(),
    );
    assert_eq!(r.patches.len(), 1);
}
