//! Variables and literals for AIG nodes.
//!
//! A [`Var`] indexes a node in an [`Aig`](crate::Aig); a [`Lit`] is a
//! variable together with a complement flag, encoded ABC-style as
//! `2 * var + complement`. The constant-false node always has index 0, so
//! [`Lit::FALSE`] is `0` and [`Lit::TRUE`] is `1`.

use std::fmt;

/// Index of a node in an [`Aig`](crate::Aig).
///
/// `Var(0)` is the constant node. Variables are assigned densely in
/// creation order, which is also a topological order of the graph.
///
/// # Examples
///
/// ```
/// use eco_aig::Var;
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.lit(false).var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// The constant-false node present in every AIG.
    pub const CONST: Var = Var(0);

    /// Creates a variable from a raw node index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Var(index)
    }

    /// Returns the raw node index.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the literal for this variable with the given complement flag.
    #[inline]
    pub const fn lit(self, complement: bool) -> Lit {
        Lit(self.0 << 1 | complement as u32)
    }

    /// Returns the positive-phase literal of this variable.
    #[inline]
    pub const fn pos(self) -> Lit {
        self.lit(false)
    }

    /// Returns the negative-phase literal of this variable.
    #[inline]
    pub const fn neg(self) -> Lit {
        self.lit(true)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A possibly-complemented reference to an AIG node.
///
/// # Examples
///
/// ```
/// use eco_aig::{Lit, Var};
/// let a = Var::new(2).pos();
/// assert_eq!(!a, Var::new(2).neg());
/// assert_eq!((!a).var(), a.var());
/// assert!(Lit::TRUE.is_const());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from its raw `2*var + complement` encoding.
    #[inline]
    pub const fn from_code(code: u32) -> Self {
        Lit(code)
    }

    /// Returns the raw `2*var + complement` encoding.
    #[inline]
    pub const fn code(self) -> u32 {
        self.0
    }

    /// Returns the underlying variable.
    #[inline]
    pub const fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is complemented.
    #[inline]
    pub const fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` if this is one of the two constant literals.
    #[inline]
    pub const fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Returns the constant value if this is a constant literal.
    #[inline]
    pub fn const_value(self) -> Option<bool> {
        match self.0 {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Returns this literal with its complement flag replaced.
    #[inline]
    pub const fn with_complement(self, complement: bool) -> Lit {
        Lit(self.0 & !1 | complement as u32)
    }

    /// Complements this literal if `c` is true (XOR with the flag).
    #[inline]
    pub const fn xor_complement(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<Var> for Lit {
    fn from(v: Var) -> Lit {
        v.pos()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!v{}", self.var().index())
        } else {
            write!(f, "v{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_lit_round_trip() {
        for i in [0u32, 1, 2, 57, 1 << 20] {
            let v = Var::new(i);
            assert_eq!(v.pos().var(), v);
            assert_eq!(v.neg().var(), v);
            assert!(!v.pos().is_complement());
            assert!(v.neg().is_complement());
        }
    }

    #[test]
    fn complement_involution() {
        let l = Var::new(9).pos();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
    }

    #[test]
    fn const_literals() {
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
        assert_eq!(Lit::FALSE.const_value(), Some(false));
        assert_eq!(Lit::TRUE.const_value(), Some(true));
        assert_eq!(Var::new(2).pos().const_value(), None);
        assert_eq!(!Lit::FALSE, Lit::TRUE);
    }

    #[test]
    fn with_complement_sets_phase() {
        let l = Var::new(4).neg();
        assert_eq!(l.with_complement(false), Var::new(4).pos());
        assert_eq!(l.with_complement(true), l);
        assert_eq!(l.xor_complement(true), Var::new(4).pos());
        assert_eq!(l.xor_complement(false), l);
    }

    #[test]
    fn code_round_trip() {
        let l = Lit::from_code(11);
        assert_eq!(l.code(), 11);
        assert_eq!(l.var().index(), 5);
        assert!(l.is_complement());
    }
}
