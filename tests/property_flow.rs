// Needs the external `proptest` crate; compiled out by default so the
// workspace builds offline. Enable with `--features proptest` (see Cargo.toml).
#![cfg(feature = "proptest")]

//! Property-based tests over the whole stack (proptest).

mod common;

use eco::aig::{Aig, Lit};
use eco::core::{EcoEngine, EcoInstance, EcoOptions, InitialPatchKind};
use eco::sat::{ClauseLabel, ItpOutcome, ItpSolver, Solver};
use eco::workgen::{assign_weights, cut_targets, WeightProfile};
use proptest::prelude::*;

/// Builds a random AIG over `n_inputs` inputs from a recipe of ops.
fn random_aig(n_inputs: usize, ops: &[(u8, usize, usize, bool, bool)]) -> (Aig, Lit) {
    let mut aig = Aig::new();
    let mut nets: Vec<Lit> = (0..n_inputs)
        .map(|i| aig.add_input(format!("x{i}")))
        .collect();
    for &(kind, i, j, ci, cj) in ops {
        let a = nets[i % nets.len()].xor_complement(ci);
        let b = nets[j % nets.len()].xor_complement(cj);
        let w = match kind % 3 {
            0 => aig.and(a, b),
            1 => aig.or(a, b),
            _ => aig.xor(a, b),
        };
        nets.push(w);
    }
    let root = *nets.last().expect("non-empty");
    (aig, root)
}

fn op_strategy() -> impl Strategy<Value = Vec<(u8, usize, usize, bool, bool)>> {
    prop::collection::vec(
        (
            any::<u8>(),
            0..64usize,
            0..64usize,
            any::<bool>(),
            any::<bool>(),
        ),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cofactor identity: f = (!x & f|x=0) | (x & f|x=1).
    #[test]
    fn shannon_expansion_holds(ops in op_strategy(), pick in 0..6usize) {
        let (mut aig, f) = random_aig(6, &ops);
        let x = aig.input_var(pick % 6);
        let f0 = aig.cofactor(&[f], x, false)[0];
        let f1 = aig.cofactor(&[f], x, true)[0];
        let xl = x.pos();
        let lo = aig.and(!xl, f0);
        let hi = aig.and(xl, f1);
        let rebuilt = aig.or(lo, hi);
        aig.add_output("f", f);
        aig.add_output("r", rebuilt);
        for bits in 0u32..64 {
            let vals: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            let out = aig.eval(&vals);
            prop_assert_eq!(out[0], out[1], "at {:?}", vals);
        }
    }

    /// Tseitin encoding of a random cone is satisfiable exactly when the
    /// function is not constant-false, and models always agree with
    /// simulation.
    #[test]
    fn tseitin_models_satisfy_circuit(ops in op_strategy()) {
        let (aig, f) = random_aig(6, &ops);
        let mut solver = Solver::new();
        let mut map = std::collections::HashMap::new();
        let roots = eco::sat::encode_cone(&aig, &[f], &mut map, &mut solver);
        solver.add_clause(&[roots[0]]);
        let truth: Vec<bool> = (0..64u32)
            .map(|bits| {
                let vals: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
                aig.eval_lit(f, &vals)
            })
            .collect();
        let any_true = truth.iter().any(|&b| b);
        let sat = solver.solve(&[]).expect("no budget");
        prop_assert_eq!(sat, any_true);
        if sat {
            let mut bits = 0u32;
            for (pos, &v) in aig.inputs().iter().enumerate() {
                if let Some(&sl) = map.get(&v) {
                    if solver.model_value(sl) == eco::sat::LBool::True {
                        bits |= 1 << pos;
                    }
                }
            }
            prop_assert!(truth[bits as usize], "model must satisfy f");
        }
    }

    /// Interpolation contract on circuit-shaped partitions: for random f,
    /// A = Tseitin(f) asserted, B = Tseitin(f') (fresh copy) negated →
    /// unsat; the interpolant over shared inputs separates f from !f.
    #[test]
    fn circuit_interpolants_separate(ops in op_strategy()) {
        let (aig, f) = random_aig(5, &ops);
        let mut q = ItpSolver::new();
        // Shared input variables.
        let shared: Vec<eco::sat::Lit> = (0..5).map(|_| q.new_var().pos()).collect();
        let seed: std::collections::HashMap<_, _> = aig
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, shared[i]))
            .collect();
        {
            let mut map = seed.clone();
            let mut sink = eco::sat::LabeledSink::new(&mut q, ClauseLabel::A);
            let r = eco::sat::encode_cone(&aig, &[f], &mut map, &mut sink);
            use eco::sat::ClauseSink as _;
            sink.sink_clause(&[r[0]]);
        }
        {
            let mut map = seed.clone();
            let mut sink = eco::sat::LabeledSink::new(&mut q, ClauseLabel::B);
            let r = eco::sat::encode_cone(&aig, &[f], &mut map, &mut sink);
            use eco::sat::ClauseSink as _;
            sink.sink_clause(&[!r[0]]);
        }
        let itp = match q.solve_limited().expect("unbounded") {
            ItpOutcome::Unsat(itp) => itp,
            ItpOutcome::Sat(_) => return Err(TestCaseError::fail("f & !f must be unsat")),
        };
        // The interpolant must equal f on every assignment (A -> I and
        // I -> f since I & !f unsat).
        for bits in 0u32..32 {
            let vals: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let mut assignment = vec![false; q.num_vars()];
            for (i, &sl) in shared.iter().enumerate() {
                assignment[sl.var().index() as usize] = vals[i];
            }
            prop_assert_eq!(
                itp.eval(&assignment),
                aig.eval_lit(f, &vals),
                "at {:?}", vals
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: for any generated rectifiable instance, the
    /// engine produces a patch whose textual splice into the faulty
    /// netlist is equivalent to the golden circuit — under every initial
    /// patch kind.
    #[test]
    fn generated_instances_always_patch(
        seed in 0u64..5000,
        n_gates in 12usize..60,
        n_targets in 1usize..4,
        initial in prop::sample::select(vec![
            InitialPatchKind::OnSet,
            InitialPatchKind::NegOffSet,
            InitialPatchKind::Interpolant,
        ]),
    ) {
        let golden = eco::workgen::circuits::random_dag(6, n_gates, 3, seed);
        // Pick targets among wires feeding outputs.
        let live: Vec<String> = {
            let e = eco::netlist::elaborate(&golden).expect("elab");
            let roots: Vec<_> = e.aig.outputs().iter().map(|o| o.lit).collect();
            let sup_cone: std::collections::HashSet<_> =
                e.aig.cone_vars(&roots).into_iter().collect();
            golden
                .wires
                .iter()
                .filter(|w| {
                    // Dangling wires are not elaborated at all.
                    e.net_lits
                        .get(*w)
                        .is_some_and(|l| sup_cone.contains(&l.var()))
                })
                .cloned()
                .collect()
        };
        prop_assume!(live.len() >= n_targets);
        let step = (live.len() / n_targets).max(1);
        let targets: Vec<String> = live.iter().step_by(step).take(n_targets).cloned().collect();
        let faulty = cut_targets(&golden, &targets).expect("targets are driven");
        let weights = assign_weights(&faulty, WeightProfile::Uniform { lo: 1, hi: 30 }, seed);
        let instance = EcoInstance::from_netlists(
            "prop", &faulty, &golden, targets, &weights,
        ).expect("valid instance");
        let options = EcoOptions { initial_patch: initial, ..Default::default() };
        let result = EcoEngine::new(instance, options).run().expect("rectifiable by construction");
        common::assert_patched_equals_golden(&faulty, &golden, &result);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Failure injection: breaking an output outside every target cone
    /// must always be *detected* — the engine reports Unrectifiable and
    /// never emits a bogus "verified" patch.
    #[test]
    fn broken_instances_are_always_rejected(seed in 0u64..1000, n_gates in 20usize..50) {
        let golden = eco::workgen::circuits::random_dag(6, n_gates, 4, seed);
        let live: Vec<String> = {
            let e = eco::netlist::elaborate(&golden).expect("elab");
            let roots: Vec<_> = e.aig.outputs().iter().map(|o| o.lit).collect();
            let cone: std::collections::HashSet<_> =
                e.aig.cone_vars(&roots).into_iter().collect();
            golden
                .wires
                .iter()
                .filter(|w| e.net_lits.get(*w).is_some_and(|l| cone.contains(&l.var())))
                .cloned()
                .collect()
        };
        prop_assume!(!live.is_empty());
        let targets = vec![live[live.len() / 2].clone()];
        let mut faulty = cut_targets(&golden, &targets).expect("targets are driven");
        let broke = eco::workgen::break_untouched_output(&mut faulty, &golden, &targets, seed);
        prop_assume!(broke.is_some());
        let weights = assign_weights(&faulty, WeightProfile::Unit, seed);
        let instance = EcoInstance::from_netlists(
            "broken", &faulty, &golden, targets, &weights,
        ).expect("valid instance");
        let err = EcoEngine::new(instance, EcoOptions::default())
            .run()
            .expect_err("broken instance must be rejected");
        prop_assert!(matches!(err, eco::core::EcoError::Unrectifiable(_)), "{err}");
    }
}
