//! Batch manifest loading.
//!
//! A manifest is a declarative list of ECO jobs. Two equivalent on-disk
//! encodings are accepted, chosen by file extension:
//!
//! * **TOML subset** (any extension other than `.json`): one `[[job]]`
//!   table per job with `key = value` lines, where a value is a quoted
//!   string, an unsigned integer, or a list of quoted strings. Blank
//!   lines and `#` comments are ignored.
//!
//!   ```toml
//!   [[job]]
//!   name = "unit00"
//!   faulty = "unit00_faulty.v"
//!   golden = "unit00_golden.v"
//!   weights = "unit00.weights"
//!   targets = ["t_0", "t_1"]
//!   budget = 200000
//!   ```
//!
//! * **JSON subset** (`.json`): either `{"jobs": [ {...}, ... ]}` or a
//!   bare top-level array of job objects with the same keys.
//!
//! `faulty` and `golden` are required; `name` defaults to the stem of the
//! faulty path, `weights` to unit weights, `targets` to the instance
//! default (every `t_`-prefixed input), and `budget` (a per-job SAT
//! conflict allowance) to the batch-wide apportionment. Relative paths
//! are resolved against the directory containing the manifest so a suite
//! directory can be moved wholesale.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::json;

/// One ECO job entry from a batch manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Display name for reports; defaults to the faulty file stem.
    pub name: String,
    /// Path to the faulty circuit (`.v` or `.blif`).
    pub faulty: PathBuf,
    /// Path to the golden circuit (`.v` or `.blif`).
    pub golden: PathBuf,
    /// Optional path to a `signal weight` table; `None` = unit weights.
    pub weights: Option<PathBuf>,
    /// Explicit target names; empty = every `t_`-prefixed faulty input.
    pub targets: Vec<String>,
    /// Optional per-job SAT conflict allowance overriding the batch-wide
    /// apportionment (the smaller of the two wins).
    pub budget: Option<u64>,
}

/// A parsed batch manifest: an ordered list of jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Jobs in manifest order; report lines keep this order.
    pub jobs: Vec<JobSpec>,
}

/// Error produced while reading or parsing a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError(pub String);

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest error: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ManifestError> {
    Err(ManifestError(msg.into()))
}

impl Manifest {
    /// Reads and parses a manifest file, resolving relative job paths
    /// against the manifest's directory.
    pub fn load(path: &Path) -> Result<Manifest, ManifestError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ManifestError(format!("cannot read {}: {e}", path.display())))?;
        let mut manifest = if path.extension().is_some_and(|e| e == "json") {
            Manifest::parse_json(&text)?
        } else {
            Manifest::parse_toml(&text)?
        };
        if let Some(dir) = path.parent() {
            manifest.resolve_relative_to(dir);
        }
        Ok(manifest)
    }

    /// Rewrites every relative job path to be relative to `dir`.
    pub fn resolve_relative_to(&mut self, dir: &Path) {
        let resolve = |p: &mut PathBuf| {
            if p.is_relative() {
                *p = dir.join(&*p);
            }
        };
        for job in &mut self.jobs {
            resolve(&mut job.faulty);
            resolve(&mut job.golden);
            if let Some(w) = &mut job.weights {
                resolve(w);
            }
        }
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse_toml(text: &str) -> Result<Manifest, ManifestError> {
        let mut jobs: Vec<RawJob> = Vec::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[job]]" {
                jobs.push(RawJob::default());
                continue;
            }
            if line.starts_with('[') {
                return err(format!("line {}: unknown table {line}", lineno + 1));
            }
            let Some((key, value)) = line.split_once('=') else {
                return err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let Some(job) = jobs.last_mut() else {
                return err(format!(
                    "line {}: key outside any [[job]] table",
                    lineno + 1
                ));
            };
            let key = key.trim();
            let value = parse_toml_value(value.trim())
                .map_err(|m| ManifestError(format!("line {}: {m}", lineno + 1)))?;
            job.set(key, value)
                .map_err(|m| ManifestError(format!("line {}: {m}", lineno + 1)))?;
        }
        finish(jobs)
    }

    /// Parses the JSON subset described in the module docs.
    pub fn parse_json(text: &str) -> Result<Manifest, ManifestError> {
        let value = json::parse(text).map_err(ManifestError)?;
        let entries = match value {
            json::Value::Arr(items) => items,
            json::Value::Obj(fields) => {
                let Some((_, jobs)) = fields.into_iter().find(|(k, _)| k == "jobs") else {
                    return err("top-level object is missing the \"jobs\" array");
                };
                match jobs {
                    json::Value::Arr(items) => items,
                    _ => return err("\"jobs\" must be an array"),
                }
            }
            _ => return err("expected a top-level array or {\"jobs\": [...]}"),
        };
        let mut jobs = Vec::new();
        for (i, entry) in entries.into_iter().enumerate() {
            jobs.push(job_spec_from_json(&format!("job {i}"), entry)?);
        }
        if jobs.is_empty() {
            return err("manifest contains no jobs");
        }
        Ok(Manifest { jobs })
    }
}

/// Builds one [`JobSpec`] from a parsed JSON job object with the same
/// keys as a manifest entry (`name`, `faulty`, `golden`, `weights`,
/// `targets`, `budget`). `label` prefixes error messages and is the
/// name fallback of last resort. Shared by [`Manifest::parse_json`] and
/// the `eco-serve` request protocol.
pub fn job_spec_from_json(label: &str, value: json::Value) -> Result<JobSpec, ManifestError> {
    let json::Value::Obj(fields) = value else {
        return err(format!("{label}: expected an object"));
    };
    let mut job = RawJob::default();
    for (key, value) in fields {
        let value = match value {
            json::Value::Str(s) => Value::Str(s),
            json::Value::Int(n) => Value::Int(n),
            json::Value::Arr(items) => {
                let mut list = Vec::new();
                for item in items {
                    match item {
                        json::Value::Str(s) => list.push(s),
                        _ => return err(format!("{label}: {key}: expected strings")),
                    }
                }
                Value::List(list)
            }
            _ => return err(format!("{label}: {key}: unsupported value type")),
        };
        job.set(&key, value)
            .map_err(|m| ManifestError(format!("{label}: {m}")))?;
    }
    finish_one(label, job)
}

/// A scalar or list value from either encoding.
enum Value {
    Str(String),
    Int(u64),
    List(Vec<String>),
}

#[derive(Default)]
struct RawJob {
    name: Option<String>,
    faulty: Option<String>,
    golden: Option<String>,
    weights: Option<String>,
    targets: Vec<String>,
    budget: Option<u64>,
}

impl RawJob {
    fn set(&mut self, key: &str, value: Value) -> Result<(), String> {
        let expect_str = |v: Value| match v {
            Value::Str(s) => Ok(s),
            _ => Err(format!("{key}: expected a string")),
        };
        match key {
            "name" => self.name = Some(expect_str(value)?),
            "faulty" => self.faulty = Some(expect_str(value)?),
            "golden" => self.golden = Some(expect_str(value)?),
            "weights" => self.weights = Some(expect_str(value)?),
            "targets" => match value {
                Value::List(list) => self.targets = list,
                _ => return Err("targets: expected a list of strings".into()),
            },
            "budget" => match value {
                Value::Int(n) => self.budget = Some(n),
                _ => return Err("budget: expected an unsigned integer".into()),
            },
            other => return Err(format!("unknown key `{other}`")),
        }
        Ok(())
    }
}

fn finish(raw: Vec<RawJob>) -> Result<Manifest, ManifestError> {
    let mut jobs = Vec::with_capacity(raw.len());
    for (i, job) in raw.into_iter().enumerate() {
        jobs.push(finish_one(&format!("job {i}"), job)?);
    }
    if jobs.is_empty() {
        return err("manifest contains no jobs");
    }
    Ok(Manifest { jobs })
}

fn finish_one(label: &str, job: RawJob) -> Result<JobSpec, ManifestError> {
    let Some(faulty) = job.faulty else {
        return err(format!("{label}: missing required key `faulty`"));
    };
    let Some(golden) = job.golden else {
        return err(format!("{label}: missing required key `golden`"));
    };
    let faulty = PathBuf::from(faulty);
    let name = job.name.unwrap_or_else(|| {
        faulty
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| label.to_string())
    });
    Ok(JobSpec {
        name,
        faulty,
        golden: PathBuf::from(golden),
        weights: job.weights.map(PathBuf::from),
        targets: job.targets,
        budget: job.budget,
    })
}

/// Strips a `#` comment, respecting `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_toml_value(text: &str) -> Result<Value, String> {
    if let Some(rest) = text.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err("unterminated list".into());
        };
        let mut items = Vec::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_toml_value(part)? {
                Value::Str(s) => items.push(s),
                _ => return Err("lists may only contain strings".into()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err("unterminated string".into());
        };
        return Ok(Value::Str(unescape(body)?));
    }
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    digits
        .parse::<u64>()
        .map(Value::Int)
        .map_err(|_| format!("cannot parse value `{text}`"))
}

/// Splits on commas that are not inside a quoted string.
fn split_top_level(text: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in text.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    parts.push(&text[start..]);
    parts
}

fn unescape(body: &str) -> Result<String, String> {
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(format!("unsupported escape `\\{other}`")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOML: &str = r#"
# suite manifest
[[job]]
name = "unit00"
faulty = "unit00_faulty.v"   # inline comment
golden = "unit00_golden.v"
weights = "unit00.weights"
targets = ["t_0", "t_1"]
budget = 200_000

[[job]]
faulty = "unit01_faulty.v"
golden = "unit01_golden.v"
"#;

    #[test]
    fn toml_subset_round_trips_all_fields() {
        let m = Manifest::parse_toml(TOML).unwrap();
        assert_eq!(m.jobs.len(), 2);
        let j = &m.jobs[0];
        assert_eq!(j.name, "unit00");
        assert_eq!(j.faulty, PathBuf::from("unit00_faulty.v"));
        assert_eq!(j.golden, PathBuf::from("unit00_golden.v"));
        assert_eq!(j.weights, Some(PathBuf::from("unit00.weights")));
        assert_eq!(j.targets, vec!["t_0".to_string(), "t_1".to_string()]);
        assert_eq!(j.budget, Some(200_000));
        // Defaults: name from faulty stem, no weights/targets/budget.
        let j = &m.jobs[1];
        assert_eq!(j.name, "unit01_faulty");
        assert_eq!(j.weights, None);
        assert!(j.targets.is_empty());
        assert_eq!(j.budget, None);
    }

    #[test]
    fn json_object_and_bare_array_forms_agree() {
        let obj = r#"{"jobs": [
            {"name": "u", "faulty": "f.v", "golden": "g.v",
             "targets": ["t_0"], "budget": 500}
        ]}"#;
        let arr = r#"[
            {"name": "u", "faulty": "f.v", "golden": "g.v",
             "targets": ["t_0"], "budget": 500}
        ]"#;
        let a = Manifest::parse_json(obj).unwrap();
        let b = Manifest::parse_json(arr).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.jobs[0].budget, Some(500));
    }

    #[test]
    fn missing_required_keys_and_unknown_keys_are_rejected() {
        assert!(Manifest::parse_toml("[[job]]\nname = \"x\"\n").is_err());
        assert!(
            Manifest::parse_toml("[[job]]\nfaulty = \"f\"\ngolden = \"g\"\nbogus = 1\n").is_err()
        );
        assert!(Manifest::parse_toml("faulty = \"f\"\n").is_err()); // key before [[job]]
        assert!(Manifest::parse_toml("# only comments\n").is_err()); // no jobs
        assert!(Manifest::parse_json(r#"{"jobs": []}"#).is_err());
    }

    #[test]
    fn relative_paths_resolve_against_manifest_dir() {
        let mut m = Manifest::parse_toml(
            "[[job]]\nfaulty = \"a.v\"\ngolden = \"/abs/g.v\"\nweights = \"w.txt\"\n",
        )
        .unwrap();
        m.resolve_relative_to(Path::new("/suite"));
        assert_eq!(m.jobs[0].faulty, PathBuf::from("/suite/a.v"));
        assert_eq!(m.jobs[0].golden, PathBuf::from("/abs/g.v")); // absolute untouched
        assert_eq!(m.jobs[0].weights, Some(PathBuf::from("/suite/w.txt")));
    }

    /// Truncated escapes and other end-of-input edges must produce
    /// `ManifestError`s, never panics, in both encodings.
    #[test]
    fn truncated_escapes_error_in_both_encodings() {
        for bad in [
            "[[job]]\nfaulty = \"a\\",     // lone backslash at EOF
            "[[job]]\nfaulty = \"a\\\"",   // escape eats the closing quote
            "[[job]]\nfaulty = \"a",       // unterminated string
            "[[job]]\nfaulty = \"a\\q\"",  // unsupported escape
            "[[job]]\ntargets = [\"a\\",   // truncated escape inside a list
            "[[job]]\ntargets = [\"a\", ", // unterminated list
            "[[job]]\nbudget = ",          // empty value
        ] {
            assert!(
                Manifest::parse_toml(bad).is_err(),
                "TOML input {bad:?} must be a parse error"
            );
        }
        for bad in [
            r#"{"jobs": [{"faulty": "a\"#, // lone backslash at EOF
            r#"{"jobs": [{"faulty": "a"#,  // unterminated string
            r#"{"jobs": [{"faulty": "#,    // truncated object
            r#"{"jobs": ["#,               // truncated array
        ] {
            assert!(
                Manifest::parse_json(bad).is_err(),
                "JSON input {bad:?} must be a parse error"
            );
        }
    }

    #[test]
    fn job_spec_from_json_accepts_protocol_job_objects() {
        let v = json::parse(
            r#"{"name": "u", "faulty": "f.v", "golden": "g.v", "targets": ["t_0"], "budget": 9}"#,
        )
        .unwrap();
        let spec = job_spec_from_json("request", v).unwrap();
        assert_eq!(spec.name, "u");
        assert_eq!(spec.budget, Some(9));
        assert_eq!(spec.targets, vec!["t_0".to_string()]);

        let bad = json::parse(r#"{"faulty": "f.v"}"#).unwrap();
        let e = job_spec_from_json("request", bad).unwrap_err();
        assert!(e.to_string().contains("request: missing required key"));
    }

    #[test]
    fn comment_stripping_respects_quoted_hashes() {
        let m =
            Manifest::parse_toml("[[job]]\nfaulty = \"a#b.v\" # real comment\ngolden = \"g.v\"\n")
                .unwrap();
        assert_eq!(m.jobs[0].faulty, PathBuf::from("a#b.v"));
    }
}
