#![warn(missing_docs)]
//! # eco-batch — manifest-driven batch orchestration with a cross-job memo cache
//!
//! Runs many ECO jobs from a declarative manifest (a TOML or JSON list of
//! `{faulty, golden, weights, targets, budget}` entries) over one global
//! scoped-thread worker pool that steals work at *job* granularity: a
//! worker that finishes one instance immediately pulls the next, whatever
//! job it belongs to, so a long job never serializes the batch behind it.
//!
//! At the core sits the shared [`eco_core::MemoCache`]: a sharded,
//! lock-striped concurrent map keyed by dual 128-bit structural
//! fingerprints that memoizes whole FRAIG sweeps, rectifiability verdicts,
//! and complete verified patch results, so structurally identical
//! (sub-)circuits across jobs are solved once. Cached patches are always
//! re-verified with a fresh SAT miter before being reported, and cache
//! hits never change results — only wall time (see the
//! `eco_core::memo` module docs for the determinism argument).
//!
//! The run-wide governor budget ([`BatchOptions::budget`]) is apportioned
//! across jobs with [`eco_core::Budget::child`]: every job shares the
//! deadline while conflict allowances are divided, so a starved batch
//! degrades to per-job `Complete | Partial` records instead of dying.
//!
//! Results stream as JSONL — one line per completed job, emitted in
//! deterministic `(pass, job)` order regardless of `--jobs` — via
//! [`report`].
//!
//! # Examples
//!
//! ```
//! use eco_batch::{run_batch, BatchJob, BatchOptions, JobStatus};
//! use eco_core::EcoInstance;
//! use eco_netlist::{parse_verilog, WeightTable};
//!
//! let faulty = parse_verilog(
//!     "module f (a, b, c, t, y); input a, b, c, t; output y;
//!      xor g1 (y, t, c); endmodule",
//! )?;
//! let golden = parse_verilog(
//!     "module g (a, b, c, y); input a, b, c; output y;
//!      wire w; and g1 (w, a, b); xor g2 (y, w, c); endmodule",
//! )?;
//! let inst = EcoInstance::from_netlists(
//!     "demo", &faulty, &golden, vec!["t".into()], &WeightTable::new(1),
//! )?;
//! // Two structurally identical jobs: the second hits the memo cache.
//! let jobs = vec![
//!     BatchJob::from_instance("one", inst.clone()),
//!     BatchJob::from_instance("two", inst),
//! ];
//! let outcome = run_batch(&jobs, &BatchOptions::default());
//! assert!(outcome
//!     .records
//!     .iter()
//!     .all(|r| r.status == JobStatus::Complete));
//! assert!(outcome.memo.hits > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod executor;
pub mod json;
mod manifest;
pub mod report;
mod runner;
pub mod wal;

pub use crate::executor::{run_indexed, BoundedQueue, PushError};
pub use crate::manifest::{job_spec_from_json, JobSpec, Manifest, ManifestError};
pub use crate::report::{exit_code, record_from_json, record_json, records_jsonl, stats_json};
pub use crate::runner::{
    execute_job, load_job_instance, load_jobs, run_batch, BatchJob, BatchOptions, BatchOutcome,
    JobRecord, JobStatus,
};
pub use crate::wal::{job_fingerprint, load_journal, BatchJournal, BatchJournalState};
