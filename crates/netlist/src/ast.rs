//! Gate-level netlist data model (the ICCAD 2017 contest interchange
//! format is a structural Verilog subset over these primitives).

use std::fmt;

/// Primitive gate types of the contest's structural Verilog subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Identity.
    Buf,
    /// Inverter.
    Not,
    /// N-ary AND.
    And,
    /// N-ary OR.
    Or,
    /// N-ary NAND.
    Nand,
    /// N-ary NOR.
    Nor,
    /// N-ary XOR (odd parity).
    Xor,
    /// N-ary XNOR (even parity).
    Xnor,
}

impl GateKind {
    /// Parses a Verilog primitive name.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "buf" => GateKind::Buf,
            "not" => GateKind::Not,
            "and" => GateKind::And,
            "or" => GateKind::Or,
            "nand" => GateKind::Nand,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            _ => return None,
        })
    }

    /// The Verilog keyword for this gate.
    pub fn keyword(self) -> &'static str {
        match self {
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A net reference: a named wire or a constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NetRef {
    /// A named net.
    Named(String),
    /// The `1'b0` / `1'b1` constant.
    Const(bool),
}

impl NetRef {
    /// Creates a named reference.
    pub fn named(name: impl Into<String>) -> Self {
        NetRef::Named(name.into())
    }

    /// The net name, if named.
    pub fn name(&self) -> Option<&str> {
        match self {
            NetRef::Named(n) => Some(n),
            NetRef::Const(_) => None,
        }
    }
}

impl fmt::Display for NetRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetRef::Named(n) => f.write_str(n),
            NetRef::Const(false) => f.write_str("1'b0"),
            NetRef::Const(true) => f.write_str("1'b1"),
        }
    }
}

/// One primitive gate instance: `kind name (output, inputs...)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gate {
    /// Gate primitive.
    pub kind: GateKind,
    /// Optional instance name.
    pub name: Option<String>,
    /// Output net (always named).
    pub output: String,
    /// Input nets in port order.
    pub inputs: Vec<NetRef>,
}

/// A flat gate-level module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Netlist {
    /// Module name.
    pub name: String,
    /// Declared input nets, in declaration order.
    pub inputs: Vec<String>,
    /// Declared output nets, in declaration order.
    pub outputs: Vec<String>,
    /// Declared internal wires.
    pub wires: Vec<String>,
    /// Gate instances.
    pub gates: Vec<Gate>,
}

impl Netlist {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Total number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Iterates over all declared net names (inputs, outputs, wires).
    pub fn declared_nets(&self) -> impl Iterator<Item = &str> {
        self.inputs
            .iter()
            .chain(&self.outputs)
            .chain(&self.wires)
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_kind_keywords_round_trip() {
        for kw in ["buf", "not", "and", "or", "nand", "nor", "xor", "xnor"] {
            let k = GateKind::from_keyword(kw).expect("known keyword");
            assert_eq!(k.keyword(), kw);
        }
        assert_eq!(GateKind::from_keyword("dff"), None);
    }

    #[test]
    fn netref_display() {
        assert_eq!(NetRef::named("n1").to_string(), "n1");
        assert_eq!(NetRef::Const(true).to_string(), "1'b1");
        assert_eq!(NetRef::Const(false).to_string(), "1'b0");
        assert_eq!(NetRef::named("x").name(), Some("x"));
        assert_eq!(NetRef::Const(true).name(), None);
    }

    #[test]
    fn declared_nets_covers_all_sections() {
        let mut n = Netlist::new("m");
        n.inputs.push("a".into());
        n.outputs.push("y".into());
        n.wires.push("w".into());
        let nets: Vec<&str> = n.declared_nets().collect();
        assert_eq!(nets, vec!["a", "y", "w"]);
    }
}
